#include "runtime/thread_pool_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "storage/serializer.h"

namespace taskbench::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point origin) {
  return std::chrono::duration<double>(Clock::now() - origin).count();
}

std::string KeyFor(DataId id) {
  return StrFormat("d%lld", static_cast<long long>(id));
}

}  // namespace

ThreadPoolExecutor::ThreadPoolExecutor(
    RunOptions options, std::shared_ptr<storage::BlockStorage> store)
    : options_(std::move(options)), store_(std::move(store)) {
  TB_CHECK(options_.num_threads > 0);
  if (options_.use_storage && store_ == nullptr) {
    store_ = std::make_shared<storage::InMemoryStorage>();
  }
}

Result<RunReport> ThreadPoolExecutor::Execute(TaskGraph& graph) {
  TB_RETURN_IF_ERROR(graph.Validate());

  // Shared state for the worker pool.
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<TaskId> ready;
    std::vector<int> remaining_deps;
    // Memory-mode store. Values are held by shared_ptr so readers can
    // take ownership under the lock and copy (or just read) outside
    // it — a worker deserializing a large block must not serialize
    // every other worker behind the global mutex. The DAG guarantees
    // a datum is never overwritten while a reader still uses it
    // (write-after-read dependencies order those tasks), and the old
    // value's last shared_ptr keeps it alive regardless.
    std::map<DataId, std::shared_ptr<data::Matrix>> values;
    int64_t completed = 0;
    int64_t total = 0;
    int64_t retries = 0;
    std::vector<TaskAttempt> attempts;
    bool failed = false;
    Status failure;
  } shared;

  shared.total = graph.num_tasks();
  shared.remaining_deps.resize(static_cast<size_t>(graph.num_tasks()));
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    shared.remaining_deps[static_cast<size_t>(t)] =
        static_cast<int>(graph.task(t).deps.size());
    if (shared.remaining_deps[static_cast<size_t>(t)] == 0) {
      shared.ready.push_back(t);
    }
  }

  // Stage the initial values: into storage (serialized) or the
  // memory-mode map.
  for (DataId d = 0; d < graph.num_data(); ++d) {
    DataEntry& entry = graph.mutable_data(d);
    if (!entry.value.has_value()) continue;
    if (options_.use_storage) {
      std::vector<uint8_t> bytes;
      storage::Serializer::Serialize(*entry.value, &bytes);
      TB_RETURN_IF_ERROR(store_->Put(KeyFor(d), std::move(bytes)));
    } else {
      shared.values[d] = std::make_shared<data::Matrix>(*entry.value);
    }
  }

  std::vector<TaskRecord> records(static_cast<size_t>(graph.num_tasks()));
  const Clock::time_point origin = Clock::now();

  // Shared ownership of the current value of `d`, timing the
  // deserialization. In memory mode the critical section is one map
  // lookup and a refcount bump; no block is ever copied under the
  // lock. Storage mode deserializes a private copy (no lock at all).
  auto read_shared = [&](DataId d, double* deser_seconds)
      -> Result<std::shared_ptr<data::Matrix>> {
    if (options_.use_storage) {
      const double t0 = SecondsSince(origin);
      TB_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                          store_->Get(KeyFor(d)));
      TB_ASSIGN_OR_RETURN(data::Matrix m,
                          storage::Serializer::Deserialize(bytes));
      *deser_seconds += SecondsSince(origin) - t0;
      return std::make_shared<data::Matrix>(std::move(m));
    }
    std::shared_ptr<data::Matrix> value;
    {
      std::lock_guard<std::mutex> lock(shared.mu);
      auto it = shared.values.find(d);
      if (it != shared.values.end()) value = it->second;
    }
    if (value == nullptr) {
      return Status::NotFound(
          StrFormat("datum %lld has no value; was it ever written?",
                    static_cast<long long>(d)));
    }
    return value;
  };

  // Private mutable copy of `d` (for INOUT slots kernels update in
  // place); the memory-mode copy happens outside the lock.
  auto read_owned = [&](DataId d,
                        double* deser_seconds) -> Result<data::Matrix> {
    TB_ASSIGN_OR_RETURN(const std::shared_ptr<data::Matrix> value,
                        read_shared(d, deser_seconds));
    if (options_.use_storage) return std::move(*value);  // sole owner
    return *value;
  };

  auto write_datum = [&](DataId d, data::Matrix value,
                         double* ser_seconds) -> Status {
    if (options_.use_storage) {
      const double t0 = SecondsSince(origin);
      std::vector<uint8_t> bytes;
      storage::Serializer::Serialize(value, &bytes);
      TB_RETURN_IF_ERROR(store_->Put(KeyFor(d), std::move(bytes)));
      *ser_seconds += SecondsSince(origin) - t0;
      return Status::OK();
    }
    auto boxed = std::make_shared<data::Matrix>(std::move(value));
    std::lock_guard<std::mutex> lock(shared.mu);
    shared.values[d] = std::move(boxed);
    return Status::OK();
  };

  auto run_task = [&](TaskId id, int attempt) -> Status {
    const Task& task = graph.task(id);
    TaskRecord& rec = records[static_cast<size_t>(id)];
    rec.task = id;
    rec.type = task.spec.type;
    rec.level = task.level;
    rec.processor = Processor::kCpu;  // the real path runs on host cores
    rec.stages = perf::StageTimes{};  // a retry starts its stages over
    rec.attempt = attempt;
    rec.start = SecondsSince(origin);

    if (task.spec.kernel == nullptr) {
      return Status::FailedPrecondition(StrFormat(
          "task %lld (%s) has no kernel; simulation-only graphs cannot "
          "run on the thread-pool executor",
          static_cast<long long>(id), task.spec.type.c_str()));
    }

    // Materialize inputs (IN + INOUT) and output slots (OUT + INOUT).
    // IN values are shared with the store (zero-copy in memory mode);
    // INOUT slots get private copies kernels may mutate. out_values
    // is sized up front so pointers into it stay stable.
    std::vector<std::shared_ptr<data::Matrix>> in_values;
    std::vector<data::Matrix> out_values;
    std::vector<DataId> out_ids;
    std::vector<size_t> inout_out_index;  // out_values slots of INOUTs
    in_values.reserve(task.spec.params.size());
    out_values.resize(task.spec.params.size());
    size_t num_outputs = 0;
    for (const Param& p : task.spec.params) {
      if (p.dir == Dir::kIn) {
        TB_ASSIGN_OR_RETURN(std::shared_ptr<data::Matrix> m,
                            read_shared(p.data, &rec.stages.deserialize));
        in_values.push_back(std::move(m));
        continue;
      }
      if (p.dir == Dir::kInOut) {
        TB_ASSIGN_OR_RETURN(out_values[num_outputs],
                            read_owned(p.data, &rec.stages.deserialize));
        inout_out_index.push_back(num_outputs);
      }
      out_ids.push_back(p.data);
      ++num_outputs;
    }
    out_values.resize(num_outputs);

    // Kernel views: IN values first, then INOUT values (which alias
    // their output slots so kernels can update in place).
    std::vector<const data::Matrix*> inputs;
    std::vector<data::Matrix*> outputs;
    for (const auto& m : in_values) inputs.push_back(m.get());
    for (size_t idx : inout_out_index) inputs.push_back(&out_values[idx]);
    for (data::Matrix& m : out_values) outputs.push_back(&m);

    const double kernel_start = SecondsSince(origin);
    TB_RETURN_IF_ERROR(task.spec.kernel(inputs, outputs));
    rec.stages.parallel_fraction = SecondsSince(origin) - kernel_start;

    for (size_t i = 0; i < out_ids.size(); ++i) {
      TB_RETURN_IF_ERROR(write_datum(out_ids[i], std::move(out_values[i]),
                                     &rec.stages.serialize));
    }
    rec.end = SecondsSince(origin);
    return Status::OK();
  };

  auto worker = [&]() {
    for (;;) {
      TaskId id = -1;
      {
        std::unique_lock<std::mutex> lock(shared.mu);
        shared.cv.wait(lock, [&] {
          return shared.failed || !shared.ready.empty() ||
                 shared.completed == shared.total;
        });
        if (shared.failed || shared.completed == shared.total) return;
        id = shared.ready.front();
        shared.ready.pop_front();
      }
      // Per-task retry loop: transient failures (e.g. a fault-injecting
      // storage backend) are retried with exponential backoff until the
      // budget is spent. Gated on the default budget of 0 this is one
      // run_task call, exactly the historic fail-fast path.
      Status status;
      int attempt = 1;
      for (;;) {
        status = run_task(id, attempt);
        if (status.ok() || attempt > options_.max_retries) break;
        {
          std::lock_guard<std::mutex> lock(shared.mu);
          if (shared.failed) break;  // another worker already gave up
          ++shared.retries;
          if (options_.max_retries > 0) {
            const TaskRecord& rec = records[static_cast<size_t>(id)];
            shared.attempts.push_back(TaskAttempt{
                id, attempt, rec.node, rec.processor, rec.start,
                SecondsSince(origin), AttemptOutcome::kFailed});
          }
        }
        std::this_thread::sleep_for(std::chrono::duration<double>(
            options_.retry_backoff_s *
            static_cast<double>(1ull << std::min(attempt - 1, 30))));
        ++attempt;
      }
      {
        std::lock_guard<std::mutex> lock(shared.mu);
        if (!status.ok()) {
          if (!shared.failed) {
            shared.failed = true;
            shared.failure = std::move(status).WithContext(
                StrFormat("task %lld attempt %d",
                          static_cast<long long>(id), attempt));
          }
          shared.cv.notify_all();
          return;
        }
        if (options_.max_retries > 0) {
          const TaskRecord& rec = records[static_cast<size_t>(id)];
          shared.attempts.push_back(TaskAttempt{
              id, attempt, rec.node, rec.processor, rec.start, rec.end,
              AttemptOutcome::kCompleted});
        }
        ++shared.completed;
        for (TaskId succ : graph.task(id).successors) {
          if (--shared.remaining_deps[static_cast<size_t>(succ)] == 0) {
            shared.ready.push_back(succ);
          }
        }
        shared.cv.notify_all();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(options_.num_threads));
  for (int i = 0; i < options_.num_threads; ++i) {
    threads.emplace_back(worker);
  }
  for (std::thread& t : threads) t.join();

  if (shared.failed) return shared.failure;

  // Persist memory-mode values back onto the graph entries so they
  // survive for FetchData in both modes.
  if (!options_.use_storage) {
    // Workers have joined, so each shared_ptr is the sole owner and
    // the underlying matrix can be moved out.
    for (auto& [d, value] : shared.values) {
      graph.mutable_data(d).value = std::move(*value);
    }
  }

  RunReport report;
  report.records = std::move(records);
  for (const TaskRecord& rec : report.records) {
    report.makespan = std::max(report.makespan, rec.end);
  }
  report.faults.retries = shared.retries;
  report.attempts = std::move(shared.attempts);
  return report;
}

Result<data::Matrix> ThreadPoolExecutor::FetchData(const TaskGraph& graph,
                                                   DataId id) const {
  if (id < 0 || id >= graph.num_data()) {
    return Status::InvalidArgument(
        StrFormat("unknown data id %lld", static_cast<long long>(id)));
  }
  if (options_.use_storage) {
    TB_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                        store_->Get(KeyFor(id)));
    return storage::Serializer::Deserialize(bytes);
  }
  const DataEntry& entry = graph.data(id);
  if (!entry.value.has_value()) {
    return Status::NotFound(
        StrFormat("datum %lld has no value", static_cast<long long>(id)));
  }
  return *entry.value;
}

}  // namespace taskbench::runtime
