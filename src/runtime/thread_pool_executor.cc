#include "runtime/thread_pool_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "hw/topology.h"
#include "obs/metrics.h"
#include "runtime/invariant_check.h"
#include "runtime/sharded_value_store.h"
#include "runtime/work_stealing_queue.h"
#include "storage/block_cache.h"
#include "storage/serializer.h"

namespace taskbench::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point origin) {
  return std::chrono::duration<double>(Clock::now() - origin).count();
}

int64_t NanosSince(Clock::time_point origin) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              origin)
      .count();
}

/// Storage key of datum `id` inside run scope `scope`. Scope 0 is the
/// legacy batch namespace ("d7", byte-identical keys to every prior
/// release); nonzero scopes prefix the submission id so concurrent
/// service runs through one shared store stay disjoint.
std::string KeyFor(uint64_t scope, DataId id) {
  if (scope == 0) return StrFormat("d%lld", static_cast<long long>(id));
  return StrFormat("s%llu.d%lld", static_cast<unsigned long long>(scope),
                   static_cast<long long>(id));
}

/// Full steal sweeps over the other workers' deques before a worker
/// parks on the condition variable.
constexpr int kStealSweepsBeforePark = 4;

/// Pre-resolved per-task-type stage histograms (one set per worker).
struct StageHists {
  obs::Histogram* deserialize = nullptr;
  obs::Histogram* compute = nullptr;
  obs::Histogram* serialize = nullptr;
  obs::Histogram* duration = nullptr;
};

/// One worker's private telemetry. Workers record into their own
/// registry with no synchronization whatsoever; the registries are
/// merged into the caller's after the threads join.
struct WorkerTelemetry {
  obs::MetricsRegistry registry;
  obs::Counter* tasks = nullptr;
  obs::Counter* steals = nullptr;
  obs::Counter* parks = nullptr;
  std::vector<StageHists> types;  ///< index-aligned with the type list
};

StageHists ResolveStageHists(obs::MetricsRegistry* registry,
                             const std::string& type) {
  StageHists h;
  h.deserialize =
      registry->histogram(StrFormat("task.%s.deserialize_s", type.c_str()));
  h.compute = registry->histogram(StrFormat("task.%s.compute_s", type.c_str()));
  h.serialize =
      registry->histogram(StrFormat("task.%s.serialize_s", type.c_str()));
  h.duration =
      registry->histogram(StrFormat("task.%s.duration_s", type.c_str()));
  return h;
}

}  // namespace

ThreadPoolExecutor::ThreadPoolExecutor(
    RunOptions options, std::shared_ptr<storage::BlockStorage> store)
    : options_(std::move(options)), store_(std::move(store)) {
  TB_CHECK(options_.num_threads > 0);
  if (options_.use_storage && store_ == nullptr) {
    store_ = std::make_shared<storage::InMemoryStorage>(
        static_cast<size_t>(std::max(0, options_.storage_shards)));
    private_store_ = true;
  }
  if (options_.block_cache && options_.use_storage && private_store_) {
    fetch_cache_ = std::make_unique<storage::BlockCache>(
        options_.block_cache_bytes != 0 ? options_.block_cache_bytes
                                        : storage::kDefaultBlockCacheBytes);
  }
}

Result<RunReport> ThreadPoolExecutor::Execute(TaskGraph& graph,
                                              const RunContext& ctx) {
  TB_RETURN_IF_ERROR(graph.Validate());

  // Any run may rewrite scope-0 keys the post-run Fetch cache was
  // built from; drop it wholesale (versions are per-run ordinals and
  // do not compare across runs).
  if (fetch_cache_ != nullptr) {
    std::lock_guard<std::mutex> lock(fetch_mu_);
    fetch_cache_->Clear();
  }

  const int num_workers = options_.num_threads;
  const int64_t total = graph.num_tasks();
  const CancellationToken* const cancel = ctx.cancel;
  const auto cancel_requested = [cancel] {
    return cancel != nullptr && cancel->cancelled();
  };

  // ----------------------------------------------------------------
  // Shared pool state. The scheduling fast path is lock-free: one
  // Chase–Lev deque per worker, atomic dependency counters, atomic
  // completion count. Mutexes remain only at the edges — parking idle
  // workers, recording retry attempts, and publishing the failure
  // status — none of which is touched on the fault-free hot path.
  // ----------------------------------------------------------------
  struct Pool {
    std::vector<WorkStealingQueue<TaskId>> queues;
    std::vector<std::atomic<int>> remaining_deps;
    std::atomic<int64_t> completed{0};
    // Tasks pushed to some deque and not yet claimed. Part of the
    // Dekker-style handshake with parking: producers bump it (seq_cst)
    // before checking sleepers; a parking worker registers as a
    // sleeper before re-checking it.
    std::atomic<int64_t> num_ready{0};
    std::atomic<bool> failed{false};

    std::mutex park_mu;
    std::condition_variable park_cv;
    std::atomic<int> sleepers{0};

    std::mutex fault_mu;  // guards failure, attempts, retries
    Status failure;
    std::vector<TaskAttempt> attempts;
    int64_t retries = 0;
  } pool;

  pool.queues.reserve(static_cast<size_t>(num_workers));
  const size_t per_queue_hint =
      static_cast<size_t>(total / std::max(1, num_workers) + 1);
  for (int w = 0; w < num_workers; ++w) {
    pool.queues.emplace_back(per_queue_hint);
  }

  {
    // std::atomic<int> is not copyable, so size the vector in place.
    std::vector<std::atomic<int>> deps(static_cast<size_t>(total));
    pool.remaining_deps = std::move(deps);
  }
  int64_t initially_ready = 0;
  for (TaskId t = 0; t < total; ++t) {
    const int deps = static_cast<int>(graph.task(t).deps.size());
    pool.remaining_deps[static_cast<size_t>(t)].store(
        deps, std::memory_order_relaxed);
    if (deps == 0) {
      // Round-robin the roots so workers start with local work
      // instead of all stealing from worker 0.
      pool.queues[static_cast<size_t>(initially_ready % num_workers)].Push(t);
      ++initially_ready;
    }
  }
  pool.num_ready.store(initially_ready, std::memory_order_relaxed);

  // Online invariant checking: dependency-completion flags plus the
  // datum version each access must observe (writer ordinals, set
  // idempotently so retries cannot trip the check). The checks read
  // and write a handful of atomics per task — no locks, no effect on
  // scheduling or values.
  const bool check = options_.check_invariants;
  // The versioned block cache keys entries by the same writer
  // ordinals the invariant checker predicts, so the oracle doubles as
  // the cache's version source (built once, shared by both features).
  const bool use_cache = options_.block_cache && options_.use_storage;
  VersionOracle oracle;
  std::vector<std::atomic<int>> data_version;
  std::vector<std::atomic<char>> completed_flag;
  if (check || use_cache) {
    oracle = VersionOracle::Build(graph);
  }
  if (check) {
    std::vector<std::atomic<int>> versions(
        static_cast<size_t>(graph.num_data()));
    data_version = std::move(versions);
    std::vector<std::atomic<char>> flags(static_cast<size_t>(total));
    completed_flag = std::move(flags);
    for (auto& v : data_version) v.store(0, std::memory_order_relaxed);
    for (auto& f : completed_flag) f.store(0, std::memory_order_relaxed);
  }

  // Memory-mode value store; unused (size 0) in storage mode.
  ShardedValueStore values(options_.use_storage ? 0 : graph.num_data(),
                           options_.value_store_stripes);

  // Storage-mode keys, formatted once per datum instead of on every
  // Put/Get (the old KeyFor-per-operation showed up in profiles).
  std::vector<std::string> keys;
  if (options_.use_storage) {
    keys.reserve(static_cast<size_t>(graph.num_data()));
    for (DataId d = 0; d < graph.num_data(); ++d) {
      keys.push_back(KeyFor(ctx.scope, d));
    }
  }

  // Scoped runs clean their keys out of the shared store on every
  // exit path (success, failure, cancellation, early error return): a
  // resident service cycling thousands of submissions through one
  // executor must not grow the store without bound. Scope 0 keys are
  // left behind, exactly as the batch path always has (FetchData
  // reads them).
  struct ScopeKeyCleaner {
    storage::BlockStorage* store;
    const std::vector<std::string>* keys;
    ~ScopeKeyCleaner() {
      if (store == nullptr) return;
      for (const std::string& key : *keys) {
        const Status ignored = store->Delete(key);
        (void)ignored;
      }
    }
  } scope_cleaner{
      options_.use_storage && ctx.scope != 0 ? store_.get() : nullptr, &keys};

  // Stage the initial values: into storage (serialized) or the
  // memory-mode store. One scratch buffer serves every staging Put.
  {
    std::vector<uint8_t> scratch;
    for (DataId d = 0; d < graph.num_data(); ++d) {
      DataEntry& entry = graph.mutable_data(d);
      if (!entry.value.has_value()) continue;
      if (options_.use_storage) {
        scratch.clear();
        storage::Serializer::Serialize(*entry.value, &scratch);
        TB_RETURN_IF_ERROR(store_->Put(keys[static_cast<size_t>(d)],
                                       scratch.data(), scratch.size()));
      } else {
        values.Put(d, std::make_shared<data::Matrix>(*entry.value));
      }
    }
  }

  std::vector<TaskRecord> records(static_cast<size_t>(total));
  const Clock::time_point origin = Clock::now();

  // ----------------------------------------------------------------
  // Speculative hedging (cost-model policy, docs/SCHEDULERS.md): an
  // idle worker that finds no work duplicates the longest-running
  // task instead of parking; the first attempt to finish claims the
  // task with one atomic exchange and is the only attempt that
  // publishes anything (record, writer ordinals, successor release,
  // completion count) — the loser computed into locals and discards
  // them, so it leaves no trace.
  //
  // Only tasks whose re-execution is provably idempotent are
  // hedgeable: no INOUT params (a duplicate would double-apply the
  // in-place update) and every accessed datum has at most one writer
  // in the whole graph (a zombie attempt can then neither observe a
  // rewritten input nor clobber a successor's newer output — its
  // storage writes are byte-identical replays). Gated on
  // max_retries == 0 so hedging never interleaves with the retry /
  // attempt-log machinery.
  // ----------------------------------------------------------------
  const bool hedge = ctx.policy.value_or(options_.policy) ==
                         SchedulingPolicy::kCostModel &&
                     !options_.sched.disable_hedging && num_workers > 1 &&
                     options_.max_retries == 0;
  std::vector<char> hedgeable;
  std::vector<std::atomic<char>> hedge_claim;
  std::vector<std::atomic<char>> hedge_tried;
  std::vector<std::atomic<int64_t>> running_task;
  std::vector<std::atomic<int64_t>> running_since_ns;
  if (hedge) {
    std::vector<int> writer_count(static_cast<size_t>(graph.num_data()), 0);
    for (TaskId t = 0; t < total; ++t) {
      for (const Param& p : graph.task(t).spec.params) {
        if (p.dir != Dir::kIn) ++writer_count[static_cast<size_t>(p.data)];
      }
    }
    hedgeable.assign(static_cast<size_t>(total), 1);
    for (TaskId t = 0; t < total; ++t) {
      for (const Param& p : graph.task(t).spec.params) {
        if (p.dir == Dir::kInOut ||
            writer_count[static_cast<size_t>(p.data)] > 1) {
          hedgeable[static_cast<size_t>(t)] = 0;
          break;
        }
      }
    }
    std::vector<std::atomic<char>> claims(static_cast<size_t>(total));
    hedge_claim = std::move(claims);
    std::vector<std::atomic<char>> tried(static_cast<size_t>(total));
    hedge_tried = std::move(tried);
    for (auto& c : hedge_claim) c.store(0, std::memory_order_relaxed);
    for (auto& c : hedge_tried) c.store(0, std::memory_order_relaxed);
    std::vector<std::atomic<int64_t>> rt(static_cast<size_t>(num_workers));
    running_task = std::move(rt);
    std::vector<std::atomic<int64_t>> rs(static_cast<size_t>(num_workers));
    running_since_ns = std::move(rs);
    for (auto& r : running_task) r.store(-1, std::memory_order_relaxed);
    for (auto& r : running_since_ns) r.store(0, std::memory_order_relaxed);
  }

  // Telemetry: per-worker registries plus a per-task type index, all
  // resolved up front so the workers only bump pre-looked-up
  // instruments. Entirely skipped when no registry was supplied. A
  // per-run registry in the context scopes the instruments to this
  // submission; the executor-wide RunOptions registry is the default.
  obs::MetricsRegistry* const metrics_sink =
      ctx.metrics != nullptr ? ctx.metrics : options_.metrics;
  const bool telemetry = metrics_sink != nullptr;
  std::vector<uint32_t> task_type_idx;
  std::vector<std::unique_ptr<WorkerTelemetry>> worker_telemetry;
  if (telemetry) {
    std::vector<std::string> type_names;
    std::map<std::string, uint32_t> type_index;
    task_type_idx.resize(static_cast<size_t>(total));
    for (TaskId t = 0; t < total; ++t) {
      const std::string& type = graph.task(t).spec.type;
      auto [it, inserted] =
          type_index.emplace(type, static_cast<uint32_t>(type_names.size()));
      if (inserted) type_names.push_back(type);
      task_type_idx[static_cast<size_t>(t)] = it->second;
    }
    worker_telemetry.reserve(static_cast<size_t>(num_workers));
    for (int w = 0; w < num_workers; ++w) {
      auto wt = std::make_unique<WorkerTelemetry>();
      wt->tasks = wt->registry.counter("pool.tasks");
      wt->steals = wt->registry.counter("pool.steals");
      wt->parks = wt->registry.counter("pool.parks");
      wt->types.reserve(type_names.size());
      for (const std::string& type : type_names) {
        wt->types.push_back(ResolveStageHists(&wt->registry, type));
      }
      worker_telemetry.push_back(std::move(wt));
    }
  }

  // Per-worker versioned block caches (storage mode, opt-in): hot
  // read-mostly inputs deserialize once per worker instead of once
  // per read. Entries are keyed by datum id + the writer ordinal the
  // oracle predicts for the access, so an INOUT rewrite looks up a
  // new version and every stale entry is unreachable by construction.
  // Owned outside the worker lambda so the stats survive the join for
  // the telemetry merge.
  std::vector<std::unique_ptr<storage::BlockCache>> worker_caches;
  if (use_cache) {
    const uint64_t cache_budget = options_.block_cache_bytes != 0
                                      ? options_.block_cache_bytes
                                      : storage::kDefaultBlockCacheBytes;
    worker_caches.reserve(static_cast<size_t>(num_workers));
    for (int w = 0; w < num_workers; ++w) {
      worker_caches.push_back(
          std::make_unique<storage::BlockCache>(cache_budget));
    }
  }

  // Topology-aware stealing: workers are striped over the NUMA
  // domains (the same contiguous striping the multi-process plane
  // uses) and each worker's victim sweep visits same-domain deques
  // first — a block produced by a same-domain worker sits in local
  // memory, so preferring those victims is the thread-level analogue
  // of the locality scheduler preferring the node that holds a block.
  // On single-domain hosts this collapses to exactly the old
  // (worker_id + off) % n sweep.
  const hw::Topology& topo = hw::DetectTopology();
  std::vector<std::vector<int>> steal_order(
      static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    const int dom = topo.domain_of_worker(w, num_workers);
    std::vector<int>& order = steal_order[static_cast<size_t>(w)];
    order.reserve(static_cast<size_t>(num_workers - 1));
    for (int pass = 0; pass < 2; ++pass) {
      for (int off = 1; off < num_workers; ++off) {
        const int victim = (w + off) % num_workers;
        const bool local = topo.domain_of_worker(victim, num_workers) == dom;
        if (local == (pass == 0)) order.push_back(victim);
      }
    }
  }

  // Per-worker context: deque identity plus reusable serialization
  // scratch (steady-state storage traffic allocates nothing) and the
  // worker's private block cache, when enabled.
  struct WorkerContext {
    int id = 0;
    std::vector<uint8_t> read_scratch;
    std::vector<uint8_t> write_scratch;
    storage::BlockCache* cache = nullptr;
  };

  // Invariant "cache-served reads match the version oracle": a hit is
  // only legal when the data plane's own version bookkeeping agrees
  // with the version the entry was cached under.
  auto verify_cache_hit = [&](DataId d, uint64_t version) -> Status {
    if (!check) return Status::OK();
    const int actual = data_version[static_cast<size_t>(d)].load(
        std::memory_order_acquire);
    if (static_cast<uint64_t>(actual) != version) {
      return Status::FailedPrecondition(StrFormat(
          "invariant violation: block cache served datum %lld at "
          "version %llu but the data plane is at version %d",
          static_cast<long long>(d),
          static_cast<unsigned long long>(version), actual));
    }
    return Status::OK();
  };

  // Private deserialization of `d` from the store into the worker's
  // pooled read buffer — the uncached storage read path.
  auto read_from_store = [&](WorkerContext& ctx, DataId d,
                             double* deser_seconds) -> Result<data::Matrix> {
    const double t0 = SecondsSince(origin);
    TB_RETURN_IF_ERROR(
        store_->GetInto(keys[static_cast<size_t>(d)], &ctx.read_scratch));
    TB_ASSIGN_OR_RETURN(
        data::Matrix m,
        storage::Serializer::Deserialize(ctx.read_scratch.data(),
                                         ctx.read_scratch.size()));
    *deser_seconds += SecondsSince(origin) - t0;
    return m;
  };

  // Shared ownership of the current value of `d` at `version`, timing
  // the deserialization. In memory mode the critical section is one
  // stripe lock and a refcount bump; no block is ever copied under a
  // lock. Storage mode deserializes from the worker's pooled read
  // buffer — through the worker's block cache when enabled, where a
  // warm read is a hash lookup and a refcount bump instead. The wire
  // format is lossless, so a cached block is bit-identical to a fresh
  // deserialize and results cannot depend on the hit pattern.
  auto read_shared = [&](WorkerContext& ctx, DataId d, uint64_t version,
                         double* deser_seconds)
      -> Result<std::shared_ptr<const data::Matrix>> {
    if (options_.use_storage) {
      if (ctx.cache != nullptr) {
        if (storage::BlockCache::ValuePtr hit =
                ctx.cache->Get(static_cast<uint64_t>(d), version)) {
          TB_RETURN_IF_ERROR(verify_cache_hit(d, version));
          return hit;
        }
        TB_ASSIGN_OR_RETURN(data::Matrix m,
                            read_from_store(ctx, d, deser_seconds));
        return ctx.cache->Put(static_cast<uint64_t>(d), version,
                              std::move(m));
      }
      TB_ASSIGN_OR_RETURN(data::Matrix m,
                          read_from_store(ctx, d, deser_seconds));
      return std::make_shared<const data::Matrix>(std::move(m));
    }
    std::shared_ptr<data::Matrix> value = values.Get(d);
    if (value == nullptr) {
      return Status::NotFound(
          StrFormat("datum %lld has no value; was it ever written?",
                    static_cast<long long>(d)));
    }
    return std::shared_ptr<const data::Matrix>(std::move(value));
  };

  // Private mutable copy of `d` (for INOUT slots kernels update in
  // place); copies happen outside any lock, and a cache hit copies
  // the shared entry instead of mutating it (other holders of the
  // handle would see the kernel's writes otherwise).
  auto read_owned = [&](WorkerContext& ctx, DataId d, uint64_t version,
                        double* deser_seconds) -> Result<data::Matrix> {
    if (options_.use_storage) {
      if (ctx.cache != nullptr) {
        if (storage::BlockCache::ValuePtr hit =
                ctx.cache->Get(static_cast<uint64_t>(d), version)) {
          TB_RETURN_IF_ERROR(verify_cache_hit(d, version));
          return *hit;
        }
      }
      // Miss: private copy straight from the store. Not inserted —
      // this reader is about to overwrite `d`, so the entry would be
      // stale before anyone could hit it.
      return read_from_store(ctx, d, deser_seconds);
    }
    TB_ASSIGN_OR_RETURN(const std::shared_ptr<const data::Matrix> value,
                        read_shared(ctx, d, version, deser_seconds));
    return *value;
  };

  auto write_datum = [&](WorkerContext& ctx, DataId d, uint64_t version,
                         data::Matrix value, double* ser_seconds) -> Status {
    if (options_.use_storage) {
      const double t0 = SecondsSince(origin);
      ctx.write_scratch.clear();
      storage::Serializer::Serialize(value, &ctx.write_scratch);
      TB_RETURN_IF_ERROR(store_->Put(keys[static_cast<size_t>(d)],
                                     ctx.write_scratch.data(),
                                     ctx.write_scratch.size()));
      *ser_seconds += SecondsSince(origin) - t0;
      // Write-through at the writer's ordinal: successors reading
      // this version hit without touching the serializer (free when
      // they run on this worker, one miss each elsewhere). The block
      // is moved, not copied — the caller is done with it after a
      // successful Put.
      if (ctx.cache != nullptr) {
        ctx.cache->Put(static_cast<uint64_t>(d), version, std::move(value));
      }
      return Status::OK();
    }
    values.Put(d, std::make_shared<data::Matrix>(std::move(value)));
    return Status::OK();
  };

  // Executes `id` once, timing its stages into `rec` — the caller
  // picks where the record lives: records[id] on the normal path, a
  // stack-local for hedged attempts (only the claim winner's record
  // is published, so a losing duplicate never touches shared state).
  auto run_task = [&](WorkerContext& ctx, TaskId id, int attempt,
                      TaskRecord& rec) -> Status {
    const Task& task = graph.task(id);
    rec.task = id;
    rec.type = task.spec.type;
    rec.level = task.level;
    rec.processor = Processor::kCpu;  // the real path runs on host cores
    rec.stages = perf::StageTimes{};  // a retry starts its stages over
    rec.attempt = attempt;
    rec.start = SecondsSince(origin);

    if (task.spec.kernel == nullptr) {
      return Status::FailedPrecondition(StrFormat(
          "task %lld (%s) has no kernel; simulation-only graphs cannot "
          "run on the thread-pool executor",
          static_cast<long long>(id), task.spec.type.c_str()));
    }

    // Materialize inputs (IN + INOUT) and output slots (OUT + INOUT).
    // IN values are shared with the store (zero-copy in memory mode);
    // INOUT slots get private copies kernels may mutate. out_values
    // is sized up front so pointers into it stay stable.
    std::vector<std::shared_ptr<const data::Matrix>> in_values;
    std::vector<data::Matrix> out_values;
    std::vector<DataId> out_ids;
    std::vector<uint64_t> out_versions;
    std::vector<size_t> inout_out_index;  // out_values slots of INOUTs
    in_values.reserve(task.spec.params.size());
    out_values.resize(task.spec.params.size());
    size_t num_outputs = 0;
    for (size_t i = 0; i < task.spec.params.size(); ++i) {
      const Param& p = task.spec.params[i];
      // Writer ordinal the oracle predicts for this access: reads
      // expect it as the block's cache version (INOUT reads expect
      // the pre-write version); writes publish it.
      const uint64_t ordinal =
          use_cache ? static_cast<uint64_t>(oracle.ordinal(id, i)) : 0;
      if (p.dir == Dir::kIn) {
        TB_ASSIGN_OR_RETURN(
            std::shared_ptr<const data::Matrix> m,
            read_shared(ctx, p.data, ordinal, &rec.stages.deserialize));
        in_values.push_back(std::move(m));
        continue;
      }
      if (p.dir == Dir::kInOut) {
        TB_ASSIGN_OR_RETURN(
            out_values[num_outputs],
            read_owned(ctx, p.data, ordinal - 1, &rec.stages.deserialize));
        inout_out_index.push_back(num_outputs);
      }
      out_ids.push_back(p.data);
      out_versions.push_back(ordinal);
      ++num_outputs;
    }
    out_values.resize(num_outputs);

    // Kernel views: IN values first, then INOUT values (which alias
    // their output slots so kernels can update in place).
    std::vector<const data::Matrix*> inputs;
    std::vector<data::Matrix*> outputs;
    for (const auto& m : in_values) inputs.push_back(m.get());
    for (size_t idx : inout_out_index) inputs.push_back(&out_values[idx]);
    for (data::Matrix& m : out_values) outputs.push_back(&m);

    const double kernel_start = SecondsSince(origin);
    TB_RETURN_IF_ERROR(task.spec.kernel(inputs, outputs));
    rec.stages.parallel_fraction = SecondsSince(origin) - kernel_start;

    for (size_t i = 0; i < out_ids.size(); ++i) {
      TB_RETURN_IF_ERROR(write_datum(ctx, out_ids[i], out_versions[i],
                                     std::move(out_values[i]),
                                     &rec.stages.serialize));
    }
    rec.end = SecondsSince(origin);
    return Status::OK();
  };

  auto done = [&] {
    return pool.failed.load(std::memory_order_seq_cst) ||
           pool.completed.load(std::memory_order_seq_cst) == total;
  };

  // Wake companions: cheap atomic check first; the (empty) park_mu
  // critical section serializes with a parking worker's predicate
  // check so the notify cannot slip into the window between its last
  // num_ready check and its wait.
  auto wake = [&](int64_t newly_ready) {
    if (pool.sleepers.load(std::memory_order_seq_cst) > 0) {
      { std::lock_guard<std::mutex> lock(pool.park_mu); }
      if (newly_ready > 1) {
        pool.park_cv.notify_all();
      } else {
        pool.park_cv.notify_one();
      }
    }
  };
  auto wake_all = [&] {
    { std::lock_guard<std::mutex> lock(pool.park_mu); }
    pool.park_cv.notify_all();
  };

  // First worker to observe the cancellation flag publishes the
  // kCancelled failure and wakes everyone; done() then drains the
  // remaining workers (parked ones included) without starting tasks.
  auto cancel_run = [&] {
    {
      std::lock_guard<std::mutex> lock(pool.fault_mu);
      if (!pool.failed.load(std::memory_order_seq_cst)) {
        pool.failure = Status::Cancelled("run cancelled");
        pool.failed.store(true, std::memory_order_seq_cst);
      }
    }
    wake_all();
  };

  auto fail_run = [&](Status status, TaskId id, int attempt) {
    {
      std::lock_guard<std::mutex> lock(pool.fault_mu);
      if (!pool.failed.load(std::memory_order_seq_cst)) {
        pool.failure = std::move(status).WithContext(
            StrFormat("task %lld attempt %d", static_cast<long long>(id),
                      attempt));
        pool.failed.store(true, std::memory_order_seq_cst);
      }
    }
    wake_all();
  };

  // Winner-side publication shared by the normal path and hedged
  // duplicates: writer ordinals + completion flag (release, paired
  // with the claim-time acquires), successor countdown, and the run
  // completion count. Callers hold the hedge claim (or the task was
  // never hedgeable), so this runs exactly once per task.
  auto publish_completion = [&](WorkerContext& ctx, WorkerTelemetry* wt,
                                TaskId id) {
    WorkStealingQueue<TaskId>& own =
        pool.queues[static_cast<size_t>(ctx.id)];
    if (check) {
      const Task& task = graph.task(id);
      for (size_t i = 0; i < task.spec.params.size(); ++i) {
        const Param& p = task.spec.params[i];
        if (p.dir == Dir::kIn) continue;
        data_version[static_cast<size_t>(p.data)].store(
            oracle.ordinal(id, i), std::memory_order_release);
      }
      completed_flag[static_cast<size_t>(id)].store(
          1, std::memory_order_release);
    }
    if (wt != nullptr) {
      wt->tasks->Add(1);
      const TaskRecord& rec = records[static_cast<size_t>(id)];
      const StageHists& h = wt->types[task_type_idx[static_cast<size_t>(id)]];
      h.deserialize->Record(rec.stages.deserialize);
      h.compute->Record(rec.stages.parallel_fraction);
      h.serialize->Record(rec.stages.serialize);
      h.duration->Record(rec.duration());
    }
    int64_t released = 0;
    for (TaskId succ : graph.task(id).successors) {
      if (pool.remaining_deps[static_cast<size_t>(succ)].fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        own.Push(succ);
        ++released;
      }
    }
    if (released > 0) {
      pool.num_ready.fetch_add(released, std::memory_order_seq_cst);
      wake(released);
    }
    if (pool.completed.fetch_add(1, std::memory_order_seq_cst) + 1 == total) {
      wake_all();
    }
  };

  // One speculative duplicate of `id`, run by an otherwise-idle
  // worker. The duplicate computes into locals; if the primary
  // finished first the exchange loses and everything is discarded. A
  // failing duplicate is likewise discarded — the primary still owns
  // the task and surfaces any real error itself.
  auto run_hedged = [&](WorkerContext& ctx, WorkerTelemetry* wt, TaskId id) {
    TaskRecord rec;
    const Status status = run_task(ctx, id, 1, rec);
    if (!status.ok()) return;
    if (hedge_claim[static_cast<size_t>(id)].exchange(
            1, std::memory_order_seq_cst) != 0) {
      return;  // the primary won; no trace left
    }
    records[static_cast<size_t>(id)] = std::move(rec);
    publish_completion(ctx, wt, id);
  };

  auto worker = [&](int worker_id) {
    if (options_.pin_workers && topo.num_domains() > 1) {
      // Best effort: an unpinnable worker is slower, never wrong.
      const Status ignored = hw::PinCurrentThreadToCpus(
          topo.domains[static_cast<size_t>(topo.domain_of_worker(
                           worker_id, num_workers))].cpus);
      (void)ignored;
    }
    WorkerContext ctx;
    ctx.id = worker_id;
    if (use_cache) {
      ctx.cache = worker_caches[static_cast<size_t>(worker_id)].get();
    }
    WorkerTelemetry* wt =
        telemetry ? worker_telemetry[static_cast<size_t>(worker_id)].get()
                  : nullptr;
    WorkStealingQueue<TaskId>& own = pool.queues[static_cast<size_t>(
        worker_id)];
    for (;;) {
      if (done()) return;
      if (cancel_requested()) {
        cancel_run();
        return;
      }

      // Claim a task: own deque first (LIFO, warm caches), then
      // sweep the other deques as a thief, then park.
      TaskId id = -1;
      bool got = own.Pop(&id);
      bool stolen = false;
      if (!got) {
        const std::vector<int>& victims =
            steal_order[static_cast<size_t>(worker_id)];
        for (int sweep = 0; sweep < kStealSweepsBeforePark && !got; ++sweep) {
          for (size_t v = 0; v < victims.size() && !got; ++v) {
            got = pool.queues[static_cast<size_t>(victims[v])].Steal(&id);
          }
          if (done()) return;
        }
        stolen = got;
      }
      if (!got && hedge) {
        // Nothing to claim or steal: duplicate the longest-running
        // hedgeable task (if any has been executing for at least
        // hedge_min_s) instead of parking. Races with the registry
        // are benign — a stale pick just loses its claim.
        const int64_t now_ns = NanosSince(origin);
        const auto min_ns =
            static_cast<int64_t>(options_.sched.hedge_min_s * 1e9);
        TaskId target = -1;
        int64_t oldest = 0;
        for (int w2 = 0; w2 < num_workers; ++w2) {
          if (w2 == worker_id) continue;
          const int64_t rt =
              running_task[static_cast<size_t>(w2)].load(
                  std::memory_order_acquire);
          if (rt < 0 || hedgeable[static_cast<size_t>(rt)] == 0) continue;
          if (hedge_tried[static_cast<size_t>(rt)].load(
                  std::memory_order_relaxed) != 0 ||
              hedge_claim[static_cast<size_t>(rt)].load(
                  std::memory_order_relaxed) != 0) {
            continue;
          }
          const int64_t since =
              running_since_ns[static_cast<size_t>(w2)].load(
                  std::memory_order_acquire);
          if (now_ns - since < min_ns) continue;
          if (target < 0 || since < oldest) {
            oldest = since;
            target = rt;
          }
        }
        if (target >= 0 &&
            hedge_tried[static_cast<size_t>(target)].exchange(
                1, std::memory_order_seq_cst) == 0) {
          run_hedged(ctx, wt, target);
          continue;
        }
      }
      if (!got) {
        if (wt != nullptr) wt->parks->Add(1);
        std::unique_lock<std::mutex> lock(pool.park_mu);
        pool.sleepers.fetch_add(1, std::memory_order_seq_cst);
        pool.park_cv.wait(lock, [&] {
          return pool.num_ready.load(std::memory_order_seq_cst) > 0 || done();
        });
        pool.sleepers.fetch_sub(1, std::memory_order_seq_cst);
        continue;  // re-run the claim loop
      }
      if (wt != nullptr && stolen) wt->steals->Add(1);
      pool.num_ready.fetch_sub(1, std::memory_order_seq_cst);

      // Invariants at claim time: every dependency completed, and
      // every input sits at exactly the version this task's writer
      // ordinal predicts. Checked once per task (first attempt); a
      // retried attempt may legitimately re-read its own partial
      // INOUT writes.
      if (check) {
        const Task& task = graph.task(id);
        for (TaskId dep : task.deps) {
          if (completed_flag[static_cast<size_t>(dep)].load(
                  std::memory_order_acquire) == 0) {
            fail_run(Status::FailedPrecondition(StrFormat(
                         "invariant violation: task claimed before "
                         "dependency %lld completed",
                         static_cast<long long>(dep))),
                     id, 1);
            return;
          }
        }
        for (size_t i = 0; i < task.spec.params.size(); ++i) {
          const Param& p = task.spec.params[i];
          if (p.dir == Dir::kOut) continue;
          const int expected =
              oracle.ordinal(id, i) - (p.dir == Dir::kInOut ? 1 : 0);
          const int actual =
              data_version[static_cast<size_t>(p.data)].load(
                  std::memory_order_acquire);
          if (actual != expected) {
            fail_run(Status::FailedPrecondition(StrFormat(
                         "invariant violation: datum %lld read at "
                         "version %d, expected %d (stale or "
                         "unpublished block)",
                         static_cast<long long>(p.data), actual,
                         expected)),
                     id, 1);
            return;
          }
        }
      }

      // Hedgeable tasks compute into a stack-local record; only the
      // hedge-claim winner moves it into the shared slot. Everything
      // else writes records[id] directly, exactly as before.
      const bool deferred =
          hedge && hedgeable[static_cast<size_t>(id)] != 0;
      TaskRecord local_rec;
      TaskRecord& rec_slot =
          deferred ? local_rec : records[static_cast<size_t>(id)];
      if (hedge) {
        running_since_ns[static_cast<size_t>(worker_id)].store(
            NanosSince(origin), std::memory_order_release);
        running_task[static_cast<size_t>(worker_id)].store(
            id, std::memory_order_release);
      }

      // Per-task retry loop: transient failures (e.g. a
      // fault-injecting storage backend) are retried with exponential
      // backoff until the budget is spent. With the default budget of
      // 0 this is one run_task call, exactly the fail-fast path.
      Status status;
      int attempt = 1;
      for (;;) {
        status = run_task(ctx, id, attempt, rec_slot);
        if (status.ok() || attempt > options_.max_retries) break;
        {
          std::lock_guard<std::mutex> lock(pool.fault_mu);
          if (pool.failed.load(std::memory_order_seq_cst)) break;
          ++pool.retries;
          if (options_.max_retries > 0) {
            const TaskRecord& rec = rec_slot;
            pool.attempts.push_back(TaskAttempt{
                id, attempt, rec.node, rec.processor, rec.start,
                SecondsSince(origin), AttemptOutcome::kFailed});
          }
        }
        // Interruptible backoff: sleep in short slices so a Cancel()
        // lands within ~1 ms instead of after a full exponential wait.
        const auto backoff = std::chrono::duration<double>(
            options_.retry_backoff_s *
            static_cast<double>(1ull << std::min(attempt - 1, 30)));
        const Clock::time_point wake_at =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(backoff);
        while (!cancel_requested() &&
               !pool.failed.load(std::memory_order_seq_cst)) {
          const Clock::time_point now = Clock::now();
          if (now >= wake_at) break;
          std::this_thread::sleep_for(std::min<Clock::duration>(
              wake_at - now, std::chrono::milliseconds(1)));
        }
        if (cancel_requested()) {
          status = Status::Cancelled("run cancelled during retry backoff");
          break;
        }
        ++attempt;
      }

      if (hedge) {
        running_task[static_cast<size_t>(worker_id)].store(
            -1, std::memory_order_release);
      }
      if (!status.ok()) {
        fail_run(std::move(status), id, attempt);
        return;
      }

      if (deferred) {
        if (hedge_claim[static_cast<size_t>(id)].exchange(
                1, std::memory_order_seq_cst) != 0) {
          // A speculative duplicate finished first and published
          // everything; this attempt's locals just evaporate.
          continue;
        }
        records[static_cast<size_t>(id)] = std::move(local_rec);
      }

      if (options_.max_retries > 0) {
        const TaskRecord& rec = records[static_cast<size_t>(id)];
        std::lock_guard<std::mutex> lock(pool.fault_mu);
        pool.attempts.push_back(TaskAttempt{
            id, attempt, rec.node, rec.processor, rec.start, rec.end,
            AttemptOutcome::kCompleted});
      }

      // Publication (writer ordinals before successor release — the
      // fetch_sub(acq_rel) / Steal pair carries the stores to
      // whichever worker claims a released successor), telemetry and
      // the completion count, shared with the hedged path.
      publish_completion(ctx, wt, id);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    threads.emplace_back(worker, i);
  }
  for (std::thread& t : threads) t.join();

  if (pool.failed.load(std::memory_order_seq_cst)) return pool.failure;

  if (check) {
    // Conservation: tasks run one-at-a-time per worker, so total busy
    // time cannot exceed workers x makespan (all timestamps share one
    // monotonic clock and every task ran inside [0, makespan]).
    double busy = 0;
    double max_end = 0;
    for (const TaskRecord& rec : records) {
      busy += rec.duration();
      max_end = std::max(max_end, rec.end);
    }
    const double cap = max_end * num_workers;
    if (busy > cap + 1e-9 * cap + 1e-12) {
      return Status::FailedPrecondition(StrFormat(
          "invariant violation: total busy time %.17g exceeds %d "
          "workers x makespan %.17g",
          busy, num_workers, max_end));
    }
  }

  if (telemetry) {
    obs::MetricsRegistry& merged = *metrics_sink;
    for (const auto& wt : worker_telemetry) merged.MergeFrom(wt->registry);
    merged.gauge("pool.workers")->Set(num_workers);
    if (pool.retries > 0) merged.counter("pool.retries")->Add(pool.retries);
    if (use_cache) {
      obs::Counter* hits = merged.counter("cache.hits");
      obs::Counter* misses = merged.counter("cache.misses");
      obs::Counter* evictions = merged.counter("cache.evictions");
      obs::Counter* invalidations = merged.counter("cache.invalidations");
      obs::Gauge* peak = merged.gauge("cache.peak_bytes");
      for (const auto& cache : worker_caches) {
        const storage::BlockCache::Stats& s = cache->stats();
        hits->Add(s.hits);
        misses->Add(s.misses);
        evictions->Add(s.evictions);
        invalidations->Add(s.invalidations);
        peak->SetMax(static_cast<double>(s.peak_bytes));
      }
    }
  }

  // Persist memory-mode values back onto the graph entries so they
  // survive for FetchData in both modes. Workers have joined, so each
  // shared_ptr is the sole owner and the matrix can be moved out.
  if (!options_.use_storage) {
    for (auto& [d, value] : values.TakeAll()) {
      graph.mutable_data(d).value = std::move(*value);
    }
  }

  RunReport report;
  report.records = std::move(records);
  for (const TaskRecord& rec : report.records) {
    report.makespan = std::max(report.makespan, rec.end);
  }
  report.faults.retries = pool.retries;
  report.attempts = std::move(pool.attempts);
  return report;
}

Result<data::Matrix> ThreadPoolExecutor::FetchData(const TaskGraph& graph,
                                                   DataId id) const {
  if (id < 0 || id >= graph.num_data()) {
    return Status::InvalidArgument(
        StrFormat("unknown data id %lld", static_cast<long long>(id)));
  }
  if (options_.use_storage) {
    // Post-run read cache (block_cache mode, executor-private store
    // only): baseline comparisons fetch the same result blocks over
    // and over; serve repeats from the deserialized copy. Version 0
    // is a constant — the cache is cleared whenever Execute may
    // rewrite the scope-0 keys it was built from.
    if (fetch_cache_ != nullptr) {
      std::lock_guard<std::mutex> lock(fetch_mu_);
      if (storage::BlockCache::ValuePtr hit =
              fetch_cache_->Get(static_cast<uint64_t>(id), 0)) {
        return *hit;
      }
      TB_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                          store_->Get(KeyFor(0, id)));
      TB_ASSIGN_OR_RETURN(data::Matrix m,
                          storage::Serializer::Deserialize(bytes));
      storage::BlockCache::ValuePtr cached =
          fetch_cache_->Put(static_cast<uint64_t>(id), 0, std::move(m));
      return *cached;
    }
    TB_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                        store_->Get(KeyFor(0, id)));
    return storage::Serializer::Deserialize(bytes);
  }
  const DataEntry& entry = graph.data(id);
  if (!entry.value.has_value()) {
    return Status::NotFound(
        StrFormat("datum %lld has no value", static_cast<long long>(id)));
  }
  return *entry.value;
}

}  // namespace taskbench::runtime
