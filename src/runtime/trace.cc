#include "runtime/trace.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/strings.h"

namespace taskbench::runtime {

std::vector<int> AssignLanes(const std::vector<TaskRecord>& records) {
  std::vector<size_t> order(records.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return records[a].start < records[b].start;
  });

  std::vector<int> lanes(records.size(), 0);
  // Per node: free-at time of each lane.
  std::map<int, std::vector<double>> node_lanes;
  for (size_t idx : order) {
    const TaskRecord& rec = records[idx];
    auto& free_at = node_lanes[rec.node];
    int lane = -1;
    for (size_t l = 0; l < free_at.size(); ++l) {
      if (free_at[l] <= rec.start + 1e-12) {
        lane = static_cast<int>(l);
        break;
      }
    }
    if (lane < 0) {
      lane = static_cast<int>(free_at.size());
      free_at.push_back(0);
    }
    free_at[static_cast<size_t>(lane)] = rec.end;
    lanes[idx] = lane;
  }
  return lanes;
}

namespace {

void AppendEvent(std::ostringstream* out, bool* first, const std::string& name,
                 const std::string& category, int pid, int tid, double start_s,
                 double duration_s) {
  if (!*first) *out << ",\n";
  *first = false;
  *out << StrFormat(
      "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
      "\"pid\": %d, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}",
      name.c_str(), category.c_str(), pid, tid, start_s * 1e6,
      duration_s * 1e6);
}

}  // namespace

std::string ChromeTraceJson(const RunReport& report) {
  std::ostringstream out;
  out << "{\n\"traceEvents\": [\n";
  bool first = true;

  // Failed attempts (only present under fault injection) occupy real
  // node time before their task re-runs; render them as first-class
  // slices so they take part in lane assignment.
  std::vector<TaskRecord> records = report.records;
  const size_t num_completed = records.size();
  for (const TaskAttempt& attempt : report.attempts) {
    if (attempt.outcome == AttemptOutcome::kCompleted) continue;
    TaskRecord rec;
    rec.task = attempt.task;
    rec.type = StrFormat("attempt %d (%s)", attempt.attempt,
                         ToString(attempt.outcome).c_str());
    rec.processor = attempt.processor;
    rec.node = attempt.node;
    rec.start = attempt.start;
    rec.end = attempt.end;
    rec.attempt = attempt.attempt;
    records.push_back(rec);
  }

  const std::vector<int> lanes = AssignLanes(records);
  for (size_t i = 0; i < records.size(); ++i) {
    const TaskRecord& rec = records[i];
    const int pid = rec.node < 0 ? 0 : rec.node;
    const int tid = lanes[i];
    const bool failed_attempt = i >= num_completed;
    std::string name =
        failed_attempt
            ? StrFormat("%s #%lld %s", "task", static_cast<long long>(rec.task),
                        rec.type.c_str())
            : StrFormat("%s #%lld (%s)", rec.type.c_str(),
                        static_cast<long long>(rec.task),
                        ToString(rec.processor).c_str());
    if (!failed_attempt && rec.attempt > 1) {
      name += StrFormat(" [attempt %d]", rec.attempt);
    }
    AppendEvent(&out, &first, name, failed_attempt ? "attempt" : "task", pid,
                tid, rec.start, rec.duration());
    if (failed_attempt) continue;

    // Nested stage slices; stages execute back to back.
    double cursor = rec.start;
    const struct {
      const char* label;
      double duration;
    } stages[] = {
        {"deserialize", rec.stages.deserialize},
        {"serial fraction", rec.stages.serial_fraction},
        {"parallel fraction", rec.stages.parallel_fraction},
        {"cpu-gpu comm", rec.stages.cpu_gpu_comm},
        {"serialize", rec.stages.serialize},
    };
    for (const auto& stage : stages) {
      if (stage.duration <= 0) continue;
      AppendEvent(&out, &first, stage.label, "stage", pid, tid, cursor,
                  stage.duration);
      cursor += stage.duration;
    }
  }

  // Node name metadata.
  std::map<int, bool> nodes;
  for (const TaskRecord& rec : records) {
    nodes[rec.node < 0 ? 0 : rec.node] = true;
  }
  for (const auto& [node, _] : nodes) {
    if (!first) out << ",\n";
    first = false;
    out << StrFormat(
        "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, "
        "\"args\": {\"name\": \"node %d\"}}",
        node, node);
  }
  out << "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
  return out.str();
}

Status WriteChromeTrace(const RunReport& report, const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::Internal(
        StrFormat("cannot open trace file '%s'", path.c_str()));
  }
  file << ChromeTraceJson(report);
  if (!file) {
    return Status::Internal(StrFormat("short write to '%s'", path.c_str()));
  }
  return Status::OK();
}

}  // namespace taskbench::runtime
