#include "runtime/trace.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/strings.h"
#include "obs/trace_writer.h"

namespace taskbench::runtime {

std::vector<int> AssignLanes(const std::vector<TaskRecord>& records) {
  std::vector<size_t> order(records.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return records[a].start < records[b].start;
  });

  std::vector<int> lanes(records.size(), 0);
  // Per node: free-at time of each lane.
  std::map<int, std::vector<double>> node_lanes;
  for (size_t idx : order) {
    const TaskRecord& rec = records[idx];
    auto& free_at = node_lanes[rec.node];
    int lane = -1;
    for (size_t l = 0; l < free_at.size(); ++l) {
      if (free_at[l] <= rec.start + 1e-12) {
        lane = static_cast<int>(l);
        break;
      }
    }
    if (lane < 0) {
      lane = static_cast<int>(free_at.size());
      free_at.push_back(0);
    }
    free_at[static_cast<size_t>(lane)] = rec.end;
    lanes[idx] = lane;
  }
  return lanes;
}

void StreamChromeTrace(const RunReport& report, std::ostream& out,
                       const TraceOptions& options) {
  // Failed attempts (only present under fault injection) occupy real
  // node time before their task re-runs; render them as first-class
  // slices so they take part in lane assignment. Fault-free runs skip
  // the copy and export straight from report.records.
  const size_t num_completed = report.records.size();
  std::vector<TaskRecord> combined;
  const std::vector<TaskRecord>* records = &report.records;
  for (const TaskAttempt& attempt : report.attempts) {
    if (attempt.outcome == AttemptOutcome::kCompleted) continue;
    if (combined.empty()) combined = report.records;
    TaskRecord rec;
    rec.task = attempt.task;
    rec.type = StrFormat("attempt %d (%s)", attempt.attempt,
                         ToString(attempt.outcome).c_str());
    rec.processor = attempt.processor;
    rec.node = attempt.node;
    rec.start = attempt.start;
    rec.end = attempt.end;
    rec.attempt = attempt.attempt;
    combined.push_back(rec);
  }
  if (!combined.empty()) records = &combined;

  obs::TraceWriter writer(&out);
  const std::vector<int> lanes = AssignLanes(*records);
  for (size_t i = 0; i < records->size(); ++i) {
    const TaskRecord& rec = (*records)[i];
    const int pid = rec.node < 0 ? 0 : rec.node;
    const int tid = lanes[i];
    const bool failed_attempt = i >= num_completed;
    std::string name =
        failed_attempt
            ? StrFormat("%s #%lld %s", "task", static_cast<long long>(rec.task),
                        rec.type.c_str())
            : StrFormat("%s #%lld (%s)", rec.type.c_str(),
                        static_cast<long long>(rec.task),
                        ToString(rec.processor).c_str());
    if (!failed_attempt && rec.attempt > 1) {
      name += StrFormat(" [attempt %d]", rec.attempt);
    }
    writer.CompleteEvent(name, failed_attempt ? "attempt" : "task", pid, tid,
                         rec.start * 1e6, rec.duration() * 1e6);
    if (failed_attempt) continue;

    // Nested stage slices; stages execute back to back.
    double cursor = rec.start;
    const struct {
      const char* label;
      double duration;
    } stages[] = {
        {"deserialize", rec.stages.deserialize},
        {"serial fraction", rec.stages.serial_fraction},
        {"parallel fraction", rec.stages.parallel_fraction},
        {"cpu-gpu comm", rec.stages.cpu_gpu_comm},
        {"serialize", rec.stages.serialize},
    };
    for (const auto& stage : stages) {
      if (stage.duration <= 0) continue;
      writer.CompleteEvent(stage.label, "stage", pid, tid, cursor * 1e6,
                           stage.duration * 1e6);
      cursor += stage.duration;
    }
  }

  // Dependency flow arrows: producer slice end -> consumer slice
  // start, one arrow per DAG edge whose endpoints both executed.
  if (options.flow_events && options.graph != nullptr) {
    std::vector<int64_t> task_to_rec(
        static_cast<size_t>(options.graph->num_tasks()), -1);
    for (size_t i = 0; i < num_completed; ++i) {
      const TaskId id = report.records[i].task;
      if (id >= 0 && static_cast<size_t>(id) < task_to_rec.size()) {
        task_to_rec[static_cast<size_t>(id)] = static_cast<int64_t>(i);
      }
    }
    uint64_t flow_id = 0;
    for (size_t i = 0; i < num_completed; ++i) {
      const TaskRecord& rec = report.records[i];
      if (rec.task < 0 ||
          static_cast<size_t>(rec.task) >= task_to_rec.size()) {
        continue;
      }
      for (TaskId dep : options.graph->task(rec.task).deps) {
        const int64_t p = task_to_rec[static_cast<size_t>(dep)];
        if (p < 0) continue;
        const TaskRecord& parent = report.records[static_cast<size_t>(p)];
        const int parent_pid = parent.node < 0 ? 0 : parent.node;
        const int pid = rec.node < 0 ? 0 : rec.node;
        writer.FlowStart("dep", flow_id, parent_pid,
                         lanes[static_cast<size_t>(p)], parent.end * 1e6);
        writer.FlowFinish("dep", flow_id, pid, lanes[i], rec.start * 1e6);
        ++flow_id;
      }
    }
  }

  // Node name metadata.
  std::map<int, bool> nodes;
  for (const TaskRecord& rec : *records) {
    nodes[rec.node < 0 ? 0 : rec.node] = true;
  }
  for (const auto& [node, _] : nodes) {
    writer.ProcessName(node, StrFormat("node %d", node));
  }
  writer.Close();
}

std::string ChromeTraceJson(const RunReport& report,
                            const TraceOptions& options) {
  std::ostringstream out;
  StreamChromeTrace(report, out, options);
  return out.str();
}

Status WriteChromeTrace(const RunReport& report, const std::string& path,
                        const TraceOptions& options) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::Internal(
        StrFormat("cannot open trace file '%s'", path.c_str()));
  }
  StreamChromeTrace(report, file, options);
  if (!file) {
    return Status::Internal(StrFormat("short write to '%s'", path.c_str()));
  }
  return Status::OK();
}

}  // namespace taskbench::runtime
