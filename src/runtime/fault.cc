#include "runtime/fault.h"

#include "common/strings.h"

namespace taskbench::runtime {

std::string ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:
      return "crash";
    case FaultKind::kGpuLoss:
      return "gpuloss";
    case FaultKind::kSlowNode:
      return "slow";
  }
  return "unknown";
}

Status FaultPlan::Validate(int num_nodes) const {
  for (const FaultEvent& e : events) {
    if (e.time < 0) {
      return Status::InvalidArgument(
          StrFormat("fault time %g is negative", e.time));
    }
    if (e.node < 0 || e.node >= num_nodes) {
      return Status::InvalidArgument(
          StrFormat("fault targets node %d, cluster has %d nodes", e.node,
                    num_nodes));
    }
    if (e.kind == FaultKind::kSlowNode && e.factor <= 0) {
      return Status::InvalidArgument(
          StrFormat("slow-node factor %g must be positive", e.factor));
    }
  }
  if (storage_fault_rate < 0 || storage_fault_rate > 1) {
    return Status::InvalidArgument(StrFormat(
        "storage fault rate %g outside [0, 1]", storage_fault_rate));
  }
  return Status::OK();
}

namespace {

/// Parses "<kind>@T:nN[:xF]" into `event`.
Status ParseTimedEntry(const std::string& entry, FaultKind kind,
                       size_t kind_len, FaultEvent* event) {
  event->kind = kind;
  const std::vector<std::string> fields =
      Split(entry.substr(kind_len + 1), ':');  // skip "<kind>@"
  const size_t expected = kind == FaultKind::kSlowNode ? 3 : 2;
  if (fields.size() != expected) {
    return Status::InvalidArgument(
        StrFormat("fault entry '%s' malformed (expected %s)", entry.c_str(),
                  kind == FaultKind::kSlowNode ? "slow@T:nN:xF"
                                               : "<kind>@T:nN"));
  }
  TB_ASSIGN_OR_RETURN(event->time, ParseDouble(fields[0]));
  if (fields[1].size() < 2 || fields[1][0] != 'n') {
    return Status::InvalidArgument(StrFormat(
        "fault entry '%s': node field must look like n3", entry.c_str()));
  }
  TB_ASSIGN_OR_RETURN(const int64_t node, ParseInt64(fields[1].substr(1)));
  event->node = static_cast<int>(node);
  if (kind == FaultKind::kSlowNode) {
    if (fields[2].size() < 2 || fields[2][0] != 'x') {
      return Status::InvalidArgument(StrFormat(
          "fault entry '%s': factor field must look like x2.5",
          entry.c_str()));
    }
    TB_ASSIGN_OR_RETURN(event->factor, ParseDouble(fields[2].substr(1)));
  }
  return Status::OK();
}

/// Parses "storage:pP[:sS]" into `plan`.
Status ParseStorageEntry(const std::string& entry, FaultPlan* plan) {
  const std::vector<std::string> fields = Split(entry, ':');
  if (fields.size() < 2 || fields.size() > 3) {
    return Status::InvalidArgument(StrFormat(
        "fault entry '%s' malformed (expected storage:pP[:sS])",
        entry.c_str()));
  }
  if (fields[1].size() < 2 || fields[1][0] != 'p') {
    return Status::InvalidArgument(StrFormat(
        "fault entry '%s': probability field must look like p0.01",
        entry.c_str()));
  }
  TB_ASSIGN_OR_RETURN(plan->storage_fault_rate,
                      ParseDouble(fields[1].substr(1)));
  if (plan->storage_fault_rate < 0 || plan->storage_fault_rate > 1) {
    return Status::InvalidArgument(StrFormat(
        "fault entry '%s': probability %g outside [0, 1]", entry.c_str(),
        plan->storage_fault_rate));
  }
  if (fields.size() == 3) {
    if (fields[2].size() < 2 || fields[2][0] != 's') {
      return Status::InvalidArgument(StrFormat(
          "fault entry '%s': seed field must look like s42", entry.c_str()));
    }
    TB_ASSIGN_OR_RETURN(const int64_t seed, ParseInt64(fields[2].substr(1)));
    plan->seed = static_cast<uint64_t>(seed);
  }
  return Status::OK();
}

}  // namespace

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const std::string& entry : Split(spec, ',')) {
    FaultEvent event;
    if (entry.rfind("crash@", 0) == 0) {
      TB_RETURN_IF_ERROR(
          ParseTimedEntry(entry, FaultKind::kNodeCrash, 5, &event));
      plan.events.push_back(event);
    } else if (entry.rfind("gpuloss@", 0) == 0) {
      TB_RETURN_IF_ERROR(
          ParseTimedEntry(entry, FaultKind::kGpuLoss, 7, &event));
      plan.events.push_back(event);
    } else if (entry.rfind("slow@", 0) == 0) {
      TB_RETURN_IF_ERROR(
          ParseTimedEntry(entry, FaultKind::kSlowNode, 4, &event));
      plan.events.push_back(event);
    } else if (entry.rfind("storage:", 0) == 0) {
      TB_RETURN_IF_ERROR(ParseStorageEntry(entry, &plan));
    } else {
      return Status::InvalidArgument(StrFormat(
          "unknown fault entry '%s' (crash@T:nN, gpuloss@T:nN, "
          "slow@T:nN:xF, storage:pP[:sS])",
          entry.c_str()));
    }
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::vector<std::string> parts;
  for (const FaultEvent& e : events) {
    if (e.kind == FaultKind::kSlowNode) {
      parts.push_back(StrFormat("slow@%g:n%d:x%g", e.time, e.node, e.factor));
    } else {
      parts.push_back(StrFormat("%s@%g:n%d",
                                runtime::ToString(e.kind).c_str(), e.time,
                                e.node));
    }
  }
  if (storage_fault_rate > 0) {
    parts.push_back(StrFormat("storage:p%g:s%llu", storage_fault_rate,
                              static_cast<unsigned long long>(seed)));
  }
  return Join(parts, ",");
}

}  // namespace taskbench::runtime
