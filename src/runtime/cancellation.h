#ifndef TASKBENCH_RUNTIME_CANCELLATION_H_
#define TASKBENCH_RUNTIME_CANCELLATION_H_

#include <atomic>
#include <memory>

namespace taskbench::runtime {

/// Cooperative cancellation flag shared between a submitter and an
/// executing run. Copies share one flag; `Cancel()` is sticky and may
/// be called from any thread, any number of times. Executors poll
/// `cancelled()` at their scheduling edges — between task claims on
/// the thread pool, between decisions/events on the simulated master,
/// inside retry backoff waits — and tear the run down with a
/// `StatusCode::kCancelled` status. A running kernel is never
/// interrupted mid-computation: cancellation takes effect at the next
/// scheduling point, so storage and graph state stay consistent.
class CancellationToken {
 public:
  CancellationToken()
      : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation. Sticky; safe from any thread.
  void Cancel() const { flag_->store(true, std::memory_order_release); }

  /// True once Cancel() was called on this token or any copy of it.
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_CANCELLATION_H_
