#include "runtime/metrics.h"

#include <algorithm>
#include <limits>

namespace taskbench::runtime {

std::string ToString(AttemptOutcome outcome) {
  switch (outcome) {
    case AttemptOutcome::kCompleted:
      return "completed";
    case AttemptOutcome::kNodeLost:
      return "node_lost";
    case AttemptOutcome::kDeviceLost:
      return "device_lost";
    case AttemptOutcome::kStorageFault:
      return "storage_fault";
    case AttemptOutcome::kFailed:
      return "failed";
    case AttemptOutcome::kHedgeCancelled:
      return "hedge_cancelled";
  }
  return "unknown";
}

std::map<std::string, perf::StageTimes> RunReport::MeanStagesByType() const {
  std::map<std::string, perf::StageTimes> sums;
  std::map<std::string, int> counts;
  for (const TaskRecord& rec : records) {
    sums[rec.type] += rec.stages;
    ++counts[rec.type];
  }
  for (auto& [type, stages] : sums) {
    stages = stages / counts[type];
  }
  return sums;
}

std::map<std::string, int> RunReport::CountByType() const {
  std::map<std::string, int> counts;
  for (const TaskRecord& rec : records) ++counts[rec.type];
  return counts;
}

perf::StageTimes RunReport::MeanStages() const {
  perf::StageTimes sum;
  if (records.empty()) return sum;
  for (const TaskRecord& rec : records) sum += rec.stages;
  return sum / static_cast<double>(records.size());
}

std::vector<LevelStat> RunReport::LevelStats() const {
  std::map<int, std::pair<double, double>> bounds;  // level -> (min, max)
  std::map<int, int> counts;
  for (const TaskRecord& rec : records) {
    auto it = bounds.find(rec.level);
    if (it == bounds.end()) {
      bounds[rec.level] = {rec.start, rec.end};
    } else {
      it->second.first = std::min(it->second.first, rec.start);
      it->second.second = std::max(it->second.second, rec.end);
    }
    ++counts[rec.level];
  }
  std::vector<LevelStat> stats;
  stats.reserve(bounds.size());
  for (const auto& [level, minmax] : bounds) {
    LevelStat stat;
    stat.level = level;
    stat.num_tasks = counts[level];
    stat.duration = minmax.second - minmax.first;
    stats.push_back(stat);
  }
  return stats;
}

double RunReport::MeanLevelTime() const {
  const auto stats = LevelStats();
  if (stats.empty()) return 0;
  double total = 0;
  for (const LevelStat& stat : stats) total += stat.duration;
  return total / static_cast<double>(stats.size());
}

double RunReport::TotalDeserializeTime() const {
  double total = 0;
  for (const TaskRecord& rec : records) total += rec.stages.deserialize;
  return total;
}

double RunReport::TotalSerializeTime() const {
  double total = 0;
  for (const TaskRecord& rec : records) total += rec.stages.serialize;
  return total;
}

double RunReport::TotalBusyTime() const {
  double total = 0;
  for (const TaskRecord& rec : records) total += rec.duration();
  return total;
}

double RunReport::SlotUtilization(int total_slots) const {
  if (total_slots <= 0 || makespan <= 0) return 0;
  return TotalBusyTime() / (static_cast<double>(total_slots) * makespan);
}

std::vector<double> RunReport::BusyTimeByNode() const {
  std::vector<double> by_node;
  for (const TaskRecord& rec : records) {
    const size_t node = static_cast<size_t>(rec.node < 0 ? 0 : rec.node);
    if (node >= by_node.size()) by_node.resize(node + 1, 0.0);
    by_node[node] += rec.duration();
  }
  return by_node;
}

}  // namespace taskbench::runtime
