#ifndef TASKBENCH_RUNTIME_SIMULATED_EXECUTOR_H_
#define TASKBENCH_RUNTIME_SIMULATED_EXECUTOR_H_

#include "common/result.h"
#include "common/types.h"
#include "hw/cluster.h"
#include "runtime/metrics.h"
#include "runtime/task_graph.h"

namespace taskbench::runtime {

/// Options of one simulated workflow execution.
struct SimulatedExecutorOptions {
  /// Storage architecture the blocks are read from / written to.
  hw::StorageArchitecture storage = hw::StorageArchitecture::kSharedDisk;
  /// Scheduling policy the master uses.
  SchedulingPolicy policy = SchedulingPolicy::kTaskGenerationOrder;
  /// Inter-node network used for remote block reads under local-disk
  /// storage (a node pulling a block that lives on another node).
  /// InfiniBand-class defaults (Minotauro); remote reads stream the
  /// disk and the network in parallel, so a fast fabric makes remote
  /// reads nearly as cheap as local ones — which is why scheduling
  /// policy barely matters on local disks (observation O5).
  double network_aggregate_bps = 40e9;
  double network_per_stream_bps = 3e9;
  double network_latency_s = 0.1e-3;
  /// When >= 0, overrides the policy's per-decision master overhead
  /// (seconds). Used by the scheduler-overhead ablation study.
  double scheduler_overhead_override_s = -1;
  /// Hybrid CPU+GPU placement: GPU-targeted tasks may run on free CPU
  /// cores when every device is busy, and fall back to CPU when their
  /// working set exceeds device memory (instead of failing with OOM).
  /// This addresses the paper's "resource wastage" challenge — CPUs
  /// idle while GPUs queue — and turns the thread-vs-task parallelism
  /// trade-off into a per-task decision.
  bool hybrid = false;
  /// Spill guard for hybrid mode: a fitting GPU task only takes a CPU
  /// core when its CPU compute time is at most this many times its
  /// GPU compute time — spilling a 20x-slower task to a core creates
  /// stragglers instead of helping. OOM tasks always spill.
  double hybrid_max_cpu_slowdown = 4.0;
};

/// Replays a TaskGraph on a simulated CPU-GPU cluster.
///
/// This is the reproduction counterpart of running the workflow under
/// PyCOMPSs on Minotauro: tasks are dispatched by a (serialized)
/// master applying the chosen scheduling policy, occupy CPU cores or
/// GPU devices, read inputs through the storage architecture
/// (contended bandwidth resources), execute their serial/parallel/
/// communication stages per the analytic cost model, and write
/// outputs back. All the paper's metrics fall out of the run report:
/// per-stage times by task type, per-level parallel task times, and
/// the end-to-end makespan.
///
/// Fails with OutOfMemory when a GPU task's working set exceeds the
/// device memory — the configurations the figures label "GPU OOM".
class SimulatedExecutor {
 public:
  SimulatedExecutor(hw::ClusterSpec cluster, SimulatedExecutorOptions options);

  /// Runs `graph` to completion and returns the report. The graph is
  /// not modified; simulated data homes are tracked internally.
  Result<RunReport> Execute(const TaskGraph& graph) const;

  const hw::ClusterSpec& cluster() const { return cluster_; }
  const SimulatedExecutorOptions& options() const { return options_; }

 private:
  hw::ClusterSpec cluster_;
  SimulatedExecutorOptions options_;
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_SIMULATED_EXECUTOR_H_
