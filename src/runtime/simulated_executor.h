#ifndef TASKBENCH_RUNTIME_SIMULATED_EXECUTOR_H_
#define TASKBENCH_RUNTIME_SIMULATED_EXECUTOR_H_

#include <string>

#include "common/result.h"
#include "common/types.h"
#include "hw/cluster.h"
#include "runtime/executor.h"
#include "runtime/metrics.h"
#include "runtime/run_options.h"
#include "runtime/task_graph.h"

namespace taskbench::runtime {

/// Replays a TaskGraph on a simulated CPU-GPU cluster.
///
/// This is the reproduction counterpart of running the workflow under
/// PyCOMPSs on Minotauro: tasks are dispatched by a (serialized)
/// master applying the chosen scheduling policy, occupy CPU cores or
/// GPU devices, read inputs through the storage architecture
/// (contended bandwidth resources), execute their serial/parallel/
/// communication stages per the analytic cost model, and write
/// outputs back. All the paper's metrics fall out of the run report:
/// per-stage times by task type, per-level parallel task times, and
/// the end-to-end makespan.
///
/// Fault tolerance: when `options.faults` is non-empty, the plan's
/// events are injected as discrete simulator events — node crashes
/// kill in-flight tasks and lose the node's blocks (re-materialized
/// by re-running their producing tasks off the live TaskGraph), GPU
/// losses shrink a node's device capacity, slow-nodes stretch compute,
/// and seeded transient storage faults fail individual reads/writes.
/// Failed attempts retry up to `options.max_retries` times with
/// exponential backoff; exhausted retries surface as a clean error
/// Status (never a hang). Fault-free runs are bit-identical to the
/// pre-fault-tolerance executor. See docs/FAULT_TOLERANCE.md.
///
/// Fails with OutOfMemory when a GPU task's working set exceeds the
/// device memory — the configurations the figures label "GPU OOM".
class SimulatedExecutor final : public Executor {
 public:
  SimulatedExecutor(hw::ClusterSpec cluster, RunOptions options);

  /// Runs `graph` to completion and returns the report. The graph is
  /// not modified; simulated data homes are tracked internally. The
  /// executor is const/reusable — every Execute builds fresh run
  /// state, so concurrent Execute calls on one instance are safe.
  /// Cancellation (RunContext::cancel) is polled at every master
  /// scheduling edge; RunContext::scope is ignored (no real storage).
  Result<RunReport> Execute(const TaskGraph& graph,
                            const RunContext& ctx) const;
  Result<RunReport> Execute(const TaskGraph& graph) const {
    return Execute(graph, RunContext{});
  }

  // Executor interface.
  using Executor::Run;
  std::string name() const override { return "simulated"; }
  const RunOptions& options() const override { return options_; }
  Result<RunReport> Run(TaskGraph& graph, const RunContext& ctx) override {
    return Execute(graph, ctx);
  }

  const hw::ClusterSpec& cluster() const { return cluster_; }

 private:
  hw::ClusterSpec cluster_;
  RunOptions options_;
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_SIMULATED_EXECUTOR_H_
