#ifndef TASKBENCH_RUNTIME_MULTIPROC_EXECUTOR_H_
#define TASKBENCH_RUNTIME_MULTIPROC_EXECUTOR_H_

#include <string>

#include "common/result.h"
#include "data/matrix.h"
#include "runtime/executor.h"
#include "runtime/metrics.h"
#include "runtime/run_options.h"
#include "runtime/task_graph.h"

namespace taskbench::runtime {

/// Scale-out execution plane: runs a TaskGraph on forked worker
/// *processes* that exchange blocks through a POSIX shared-memory
/// arena — the single-box stand-in for the paper's distributed
/// cluster, with NUMA domains playing the role of nodes.
///
/// Architecture (docs/SCALE_OUT.md has the full picture):
///  - The coordinator (the calling process) builds the graph, maps a
///    shared-memory block arena plus a control segment, and forks
///    `options.num_procs` single-threaded workers. Forking *after*
///    graph construction means kernels (std::function, inherently
///    unserializable) ride into the workers via copy-on-write for
///    free — no code shipping, no kernel registry.
///  - Dispatch is per-worker lock-free SPSC rings in the control
///    segment: a task ring in, a completion ring out. The coordinator
///    never touches block bytes; workers serialize results straight
///    into the arena (`Serializer` wire format, same as the storage
///    path) and *stage* them — the coordinator performs the shared-
///    directory stores when it consumes the completion, so a block
///    still moves between workers without being copied through the
///    coordinator, but publication is atomic with completion: a
///    worker dying after staging leaves the directory untouched and a
///    retried attempt re-reads pre-attempt values (INOUT tasks are
///    never double-applied).
///  - Placement is topology-aware: workers are striped over the NUMA
///    domains (and optionally pinned), and a ready task prefers a
///    worker in the domain that produced most of its input bytes —
///    the same locality policy the simulated scheduler applies across
///    cluster nodes.
///  - Fault tolerance reuses the retry semantics of the thread-pool
///    path: a worker death (detected via waitpid) turns its in-flight
///    tasks into kNodeLost attempts that are re-dispatched to
///    surviving workers under `options.max_retries`; published blocks
///    live in the arena, not in the dead worker, so nothing is
///    recomputed.
///
/// POSIX-only (fork + shm_open); `Supported()` is false on platforms
/// without them and Execute fails with Unimplemented there.
///
/// Execute must be called from a single-threaded process: workers are
/// forked without exec, so a lock held by any other caller thread at
/// fork time (allocator, logging, metrics mutexes) stays locked
/// forever inside every worker, deadlocking its first allocation.
/// Execute detects extra threads (via /proc/self/task, Linux) and
/// fails with FailedPrecondition instead of hanging; join worker
/// threads (the thread-pool executor joins inside its own Execute)
/// before running this one.
class MultiProcExecutor final : public Executor {
 public:
  explicit MultiProcExecutor(RunOptions options);

  /// True when this platform can run the multi-process plane.
  static bool Supported();

  /// Runs the graph across worker processes. Initial data values are
  /// taken from the graph; on success every datum's final value is
  /// written back onto the graph entries (read them with FetchData).
  /// Cancellation (RunContext::cancel) is polled on every coordinator
  /// scheduling pass; RunContext::scope is ignored (each Execute maps
  /// a private arena, so concurrent runs cannot collide — but the
  /// single-threaded-caller rule below rules concurrent callers out
  /// anyway).
  Result<RunReport> Execute(TaskGraph& graph, const RunContext& ctx);
  Result<RunReport> Execute(TaskGraph& graph) {
    return Execute(graph, RunContext{});
  }

  /// Reads a datum's final value after Execute.
  Result<data::Matrix> FetchData(const TaskGraph& graph, DataId id) const;

  // Executor interface.
  using Executor::Run;
  std::string name() const override { return "multi-proc"; }
  const RunOptions& options() const override { return options_; }
  Result<RunReport> Run(TaskGraph& graph, const RunContext& ctx) override {
    return Execute(graph, ctx);
  }
  bool materializes() const override { return true; }
  Result<data::Matrix> Fetch(const TaskGraph& graph,
                             DataId id) const override {
    return FetchData(graph, id);
  }

 private:
  RunOptions options_;
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_MULTIPROC_EXECUTOR_H_
