#ifndef TASKBENCH_RUNTIME_SPSC_RING_H_
#define TASKBENCH_RUNTIME_SPSC_RING_H_

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace taskbench::runtime {

/// Lock-free single-producer/single-consumer ring for trivially
/// copyable messages — the coordinator↔worker control plane of the
/// multi-process executor. One instance lives in a MAP_SHARED segment
/// per direction per worker: the coordinator produces into a worker's
/// task ring and consumes its completion ring, so every ring has
/// exactly one producer process and one consumer process and needs no
/// locks at all, only an acquire/release pair per transfer.
///
/// head_ and tail_ are free-running 64-bit counters (they never wrap
/// in any realistic run), masked into the slot array on access. The
/// producer owns tail_, the consumer owns head_; each reads the
/// other's counter with acquire semantics so the slot contents it
/// observes are the ones that counter update published.
template <typename T, uint64_t kCapacity>
class SpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "ring messages cross process boundaries as raw bytes");
  static_assert(kCapacity > 0 && (kCapacity & (kCapacity - 1)) == 0,
                "capacity must be a power of two");
  static_assert(std::atomic<uint64_t>::is_always_lock_free,
                "cross-process rings need lock-free counters");

 public:
  SpscRing() = default;
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. False when the ring is full (the caller keeps the
  /// message and retries; the executor bounds in-flight work below
  /// the capacity so dispatch never actually blocks).
  bool Push(const T& item) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head == kCapacity) return false;
    slots_[tail & (kCapacity - 1)] = item;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when empty.
  bool Pop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    *out = slots_[head & (kCapacity - 1)];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Messages currently queued (either side may call; a racing
  /// producer/consumer makes this a snapshot, not a guarantee).
  uint64_t size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

  static constexpr uint64_t capacity() { return kCapacity; }

 private:
  alignas(64) std::atomic<uint64_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<uint64_t> tail_{0};  ///< producer cursor
  T slots_[kCapacity];
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_SPSC_RING_H_
