#ifndef TASKBENCH_RUNTIME_READY_QUEUE_H_
#define TASKBENCH_RUNTIME_READY_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "runtime/task_graph.h"

namespace taskbench::runtime {

/// Placement feasibility class of a task. Whether a ready task can be
/// placed *somewhere* depends only on which processor kinds have a
/// free slot — never on the specific node — so the class is static
/// per task (computed once from its spec, the hybrid flag and the
/// GPU-fit / spill-budget precomputations):
///
///   kCpuOnly    — CPU task; needs a free CPU core.
///   kGpuOnly    — GPU task that never spills (non-hybrid mode, or
///                 hybrid with a spill outside the slowdown budget);
///                 needs a free GPU device.
///   kGpuOrCpu   — hybrid GPU task within the spill budget; prefers a
///                 free device, takes a core when none is free.
///   kCpuSpill   — hybrid GPU task whose working set exceeds device
///                 memory; MUST run on a CPU core.
enum class PlacementClass : uint8_t {
  kCpuOnly = 0,
  kGpuOnly = 1,
  kGpuOrCpu = 2,
  kCpuSpill = 3,
};

inline constexpr size_t kNumPlacementClasses = 4;

/// Placement class of a task given the executor's per-task
/// precomputations. `gpu_fits` / `cpu_spill_ok` are only consulted
/// for GPU tasks in hybrid mode, mirroring the legacy ChooseProcessor
/// logic (a non-hybrid GPU task that exceeds device memory is still
/// dispatched to a device and fails there — the "GPU OOM" runs).
inline PlacementClass ClassifyTask(const TaskSpec& spec, bool hybrid,
                                   bool gpu_fits, bool cpu_spill_ok) {
  if (spec.processor == Processor::kCpu) return PlacementClass::kCpuOnly;
  if (!hybrid) return PlacementClass::kGpuOnly;
  if (!gpu_fits) return PlacementClass::kCpuSpill;
  return cpu_spill_ok ? PlacementClass::kGpuOrCpu : PlacementClass::kGpuOnly;
}

/// The master's ready set, maintained incrementally.
///
/// The legacy scheduling path materialized the whole ready set into a
/// vector before every decision and rescanned it front to back —
/// O(ready) per decision, quadratic over a wide DAG. ReadyQueue keeps
/// one min-heap of TaskIds per placement class instead. Because
/// placement feasibility is uniform within a class (see
/// PlacementClass), a scheduler never needs to look past the head of
/// each class: the task the legacy scan would have picked is exactly
/// the lowest TaskId among the heads of the currently-placeable
/// classes. One decision is O(log ready); the FIFO-by-submission-id
/// ("task generation order") semantics are preserved bit-for-bit.
class ReadyQueue {
 public:
  ReadyQueue() = default;

  /// Marks `id` (of class `cls`) ready.
  void Push(TaskId id, PlacementClass cls) {
    heaps_[static_cast<size_t>(cls)].push(id);
    ++size_;
  }

  /// Lowest ready TaskId of `cls`, or -1 when the class has none.
  TaskId Head(PlacementClass cls) const {
    const auto& h = heaps_[static_cast<size_t>(cls)];
    return h.empty() ? -1 : h.top();
  }

  /// Removes the head of `cls`. Requires Head(cls) >= 0.
  void PopHead(PlacementClass cls) {
    heaps_[static_cast<size_t>(cls)].pop();
    --size_;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  using MinHeap =
      std::priority_queue<TaskId, std::vector<TaskId>, std::greater<TaskId>>;
  MinHeap heaps_[kNumPlacementClasses];
  size_t size_ = 0;
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_READY_QUEUE_H_
