#ifndef TASKBENCH_RUNTIME_READY_QUEUE_H_
#define TASKBENCH_RUNTIME_READY_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "runtime/task_graph.h"

namespace taskbench::runtime {

/// Placement feasibility class of a task. Whether a ready task can be
/// placed *somewhere* depends only on which processor kinds have a
/// free slot — never on the specific node — so the class is static
/// per task (computed once from its spec, the hybrid flag and the
/// GPU-fit / spill-budget precomputations):
///
///   kCpuOnly    — CPU task; needs a free CPU core.
///   kGpuOnly    — GPU task that never spills (non-hybrid mode, or
///                 hybrid with a spill outside the slowdown budget);
///                 needs a free GPU device.
///   kGpuOrCpu   — hybrid GPU task within the spill budget; prefers a
///                 free device, takes a core when none is free.
///   kCpuSpill   — hybrid GPU task whose working set exceeds device
///                 memory; MUST run on a CPU core.
enum class PlacementClass : uint8_t {
  kCpuOnly = 0,
  kGpuOnly = 1,
  kGpuOrCpu = 2,
  kCpuSpill = 3,
};

inline constexpr size_t kNumPlacementClasses = 4;

/// Placement class of a task given the executor's per-task
/// precomputations. `gpu_fits` / `cpu_spill_ok` are only consulted
/// for GPU tasks in hybrid mode, mirroring the legacy ChooseProcessor
/// logic (a non-hybrid GPU task that exceeds device memory is still
/// dispatched to a device and fails there — the "GPU OOM" runs).
inline PlacementClass ClassifyTask(const TaskSpec& spec, bool hybrid,
                                   bool gpu_fits, bool cpu_spill_ok) {
  if (spec.processor == Processor::kCpu) return PlacementClass::kCpuOnly;
  if (!hybrid) return PlacementClass::kGpuOnly;
  if (!gpu_fits) return PlacementClass::kCpuSpill;
  return cpu_spill_ok ? PlacementClass::kGpuOrCpu : PlacementClass::kGpuOnly;
}

/// The master's ready set, maintained incrementally.
///
/// The legacy scheduling path materialized the whole ready set into a
/// vector before every decision and rescanned it front to back —
/// O(ready) per decision, quadratic over a wide DAG. ReadyQueue keeps
/// one heap of (score, TaskId) entries per placement class instead.
/// Because placement feasibility is uniform within a class (see
/// PlacementClass), a scheduler never needs to look past the head of
/// each class. One decision is O(log ready).
///
/// Without a scorer every entry carries score 0 and the heaps order
/// purely by lowest TaskId — byte-identical semantics to the original
/// per-class min-heaps, so the paper's FIFO-by-submission-id ("task
/// generation order") contract is preserved bit-for-bit. The
/// cost-model policy installs a scorer (SetScorer) evaluated once at
/// Push time; its heaps then surface the highest-scoring task per
/// class, ties still resolving to the lowest TaskId. A static push
/// key suffices because rank/slack are static per graph and the age
/// term grows uniformly for every ready task (docs/SCHEDULERS.md), so
/// relative order never changes while tasks wait.
class ReadyQueue {
 public:
  using ScoreFn = std::function<double(TaskId)>;

  ReadyQueue() = default;

  /// Installs `scorer`, consulted on every subsequent Push. Must be
  /// set while the queue is empty (scores of queued entries are not
  /// recomputed).
  void SetScorer(ScoreFn scorer) { scorer_ = std::move(scorer); }

  /// Marks `id` (of class `cls`) ready.
  void Push(TaskId id, PlacementClass cls) {
    const double key = scorer_ ? scorer_(id) : 0.0;
    heaps_[static_cast<size_t>(cls)].push(Entry{key, id});
    ++size_;
  }

  /// Head TaskId of `cls` (lowest id without a scorer, highest score
  /// with one), or -1 when the class has none.
  TaskId Head(PlacementClass cls) const {
    const auto& h = heaps_[static_cast<size_t>(cls)];
    return h.empty() ? -1 : h.top().id;
  }

  /// Score the head of `cls` was pushed with; -infinity when empty.
  double HeadScore(PlacementClass cls) const {
    const auto& h = heaps_[static_cast<size_t>(cls)];
    return h.empty() ? -std::numeric_limits<double>::infinity()
                     : h.top().score;
  }

  /// Removes the head of `cls`. Requires Head(cls) >= 0.
  void PopHead(PlacementClass cls) {
    heaps_[static_cast<size_t>(cls)].pop();
    --size_;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Entry {
    double score;
    TaskId id;
  };
  /// priority_queue surfaces the "largest" element: highest score
  /// first, then lowest TaskId.
  struct EntryLess {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.score != b.score) return a.score < b.score;
      return a.id > b.id;
    }
  };
  using Heap = std::priority_queue<Entry, std::vector<Entry>, EntryLess>;
  Heap heaps_[kNumPlacementClasses];
  size_t size_ = 0;
  ScoreFn scorer_;
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_READY_QUEUE_H_
