#include "runtime/executor_factory.h"

#include <utility>

#include "common/strings.h"
#include "runtime/multiproc_executor.h"
#include "runtime/simulated_executor.h"
#include "runtime/thread_pool_executor.h"

namespace taskbench::runtime {

Result<ExecutorKind> ParseExecutorKind(std::string_view name) {
  if (name == "threads") return ExecutorKind::kThreads;
  if (name == "sim") return ExecutorKind::kSim;
  if (name == "procs") return ExecutorKind::kProcs;
  return Status::InvalidArgument(StrFormat(
      "unknown executor '%.*s' (expected threads, sim, or procs)",
      static_cast<int>(name.size()), name.data()));
}

std::string_view ExecutorKindName(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kThreads:
      return "threads";
    case ExecutorKind::kSim:
      return "sim";
    case ExecutorKind::kProcs:
      return "procs";
  }
  return "unknown";
}

Result<std::unique_ptr<Executor>> MakeExecutor(const ExecutorSpec& spec) {
  switch (spec.kind) {
    case ExecutorKind::kThreads:
      return std::unique_ptr<Executor>(
          std::make_unique<ThreadPoolExecutor>(spec.options, spec.store));
    case ExecutorKind::kSim:
      return std::unique_ptr<Executor>(
          std::make_unique<SimulatedExecutor>(spec.cluster, spec.options));
    case ExecutorKind::kProcs:
      if (!MultiProcExecutor::Supported()) {
        return Status::Unimplemented(
            "multi-process execution is unsupported on this platform");
      }
      return std::unique_ptr<Executor>(
          std::make_unique<MultiProcExecutor>(spec.options));
  }
  return Status::InvalidArgument("unknown executor kind");
}

}  // namespace taskbench::runtime
