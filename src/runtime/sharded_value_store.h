#ifndef TASKBENCH_RUNTIME_SHARDED_VALUE_STORE_H_
#define TASKBENCH_RUNTIME_SHARDED_VALUE_STORE_H_

#include <array>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "data/matrix.h"
#include "runtime/task_graph.h"

namespace taskbench::runtime {

/// Memory-mode block store of the thread-pool executor: the current
/// value of every DataId, striped over independent locks.
///
/// DataIds are dense [0, num_data), so the slots are a plain vector
/// and a lookup is one stripe lock + one shared_ptr copy — no tree or
/// hash walk, and two workers contend only when their data ids share
/// a stripe (ids map round-robin, so neighboring blocks never do).
/// Values are shared_ptr so a reader takes ownership under the stripe
/// lock and uses the matrix outside it; the DAG's write-after-read
/// dependencies guarantee a datum is not overwritten while a running
/// task still reads it, and the old value's last shared_ptr keeps it
/// alive regardless.
class ShardedValueStore {
 public:
  explicit ShardedValueStore(int64_t num_slots)
      : slots_(static_cast<size_t>(num_slots)) {}

  /// Current value of `id`, or null when never written.
  std::shared_ptr<data::Matrix> Get(DataId id) const {
    std::lock_guard<std::mutex> lock(stripes_[StripeOf(id)].mu);
    return slots_[static_cast<size_t>(id)];
  }

  /// Replaces the value of `id`.
  void Put(DataId id, std::shared_ptr<data::Matrix> value) {
    std::lock_guard<std::mutex> lock(stripes_[StripeOf(id)].mu);
    slots_[static_cast<size_t>(id)] = std::move(value);
  }

  /// Takes every non-null value out of the store. Only safe once all
  /// workers have finished (the executor calls this after join, when
  /// each shared_ptr is the sole owner).
  std::vector<std::pair<DataId, std::shared_ptr<data::Matrix>>> TakeAll() {
    std::vector<std::pair<DataId, std::shared_ptr<data::Matrix>>> out;
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i] != nullptr) {
        out.emplace_back(static_cast<DataId>(i), std::move(slots_[i]));
      }
    }
    return out;
  }

 private:
  static constexpr size_t kStripes = 64;

  struct alignas(64) Stripe {  // own cache line per lock
    std::mutex mu;
  };

  static size_t StripeOf(DataId id) {
    return static_cast<size_t>(id) % kStripes;
  }

  mutable std::array<Stripe, kStripes> stripes_;
  std::vector<std::shared_ptr<data::Matrix>> slots_;
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_SHARDED_VALUE_STORE_H_
