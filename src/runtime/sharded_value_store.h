#ifndef TASKBENCH_RUNTIME_SHARDED_VALUE_STORE_H_
#define TASKBENCH_RUNTIME_SHARDED_VALUE_STORE_H_

#include <algorithm>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "data/matrix.h"
#include "hw/topology.h"
#include "runtime/task_graph.h"

namespace taskbench::runtime {

/// Memory-mode block store of the thread-pool executor: the current
/// value of every DataId, striped over independent locks.
///
/// DataIds are dense [0, num_data), so the slots are a plain vector
/// and a lookup is one stripe lock + one shared_ptr copy — no tree or
/// hash walk, and two workers contend only when their data ids share
/// a stripe (ids map round-robin, so neighboring blocks never do).
/// Values are shared_ptr so a reader takes ownership under the stripe
/// lock and uses the matrix outside it; the DAG's write-after-read
/// dependencies guarantee a datum is not overwritten while a running
/// task still reads it, and the old value's last shared_ptr keeps it
/// alive regardless.
///
/// The stripe count is a construction-time knob (RunOptions::
/// value_store_stripes); 0 derives it from the detected core count so
/// wide hosts stripe wider than the old compile-time 64.
class ShardedValueStore {
 public:
  explicit ShardedValueStore(int64_t num_slots, int stripes = 0)
      : stripes_(stripes == 0 ? DefaultStripes()
                              : NextPow2(static_cast<size_t>(
                                    std::max(1, stripes)))),
        slots_(static_cast<size_t>(num_slots)) {}

  /// Stripe count derived from the host topology, clamped to
  /// [64, 1024] (64 is the pre-knob compile-time constant, so small
  /// hosts behave exactly as before).
  static size_t DefaultStripes() {
    const size_t want =
        NextPow2(static_cast<size_t>(hw::DetectTopology().total_cpus()) * 16);
    return std::min<size_t>(1024, std::max<size_t>(64, want));
  }

  size_t num_stripes() const { return stripes_.size(); }

  /// Current value of `id`, or null when never written.
  std::shared_ptr<data::Matrix> Get(DataId id) const {
    std::lock_guard<std::mutex> lock(stripes_[StripeOf(id)].mu);
    return slots_[static_cast<size_t>(id)];
  }

  /// Replaces the value of `id`.
  void Put(DataId id, std::shared_ptr<data::Matrix> value) {
    std::lock_guard<std::mutex> lock(stripes_[StripeOf(id)].mu);
    slots_[static_cast<size_t>(id)] = std::move(value);
  }

  /// Takes every non-null value out of the store. Only safe once all
  /// workers have finished (the executor calls this after join, when
  /// each shared_ptr is the sole owner).
  std::vector<std::pair<DataId, std::shared_ptr<data::Matrix>>> TakeAll() {
    std::vector<std::pair<DataId, std::shared_ptr<data::Matrix>>> out;
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i] != nullptr) {
        out.emplace_back(static_cast<DataId>(i), std::move(slots_[i]));
      }
    }
    return out;
  }

 private:
  struct alignas(64) Stripe {  // own cache line per lock
    std::mutex mu;
  };

  static size_t NextPow2(size_t n) {
    size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  size_t StripeOf(DataId id) const {
    return static_cast<size_t>(id) & (stripes_.size() - 1);
  }

  // Sized once at construction, never reallocated (Stripe is
  // immovable).
  mutable std::vector<Stripe> stripes_;
  std::vector<std::shared_ptr<data::Matrix>> slots_;
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_SHARDED_VALUE_STORE_H_
