#ifndef TASKBENCH_RUNTIME_SCHEDULER_H_
#define TASKBENCH_RUNTIME_SCHEDULER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "hw/cluster.h"
#include "runtime/task_graph.h"

namespace taskbench::runtime {

/// Snapshot of the cluster state a scheduler decides on.
struct SchedulerView {
  const TaskGraph* graph = nullptr;
  /// Dependency-free tasks in submission order (the "task generation
  /// order").
  const std::vector<TaskId>* ready = nullptr;
  /// Free execution slots per node for the processor kind each ready
  /// task targets. free_slots[node] == number of free slots.
  const std::vector<int>* free_cpu_slots = nullptr;
  const std::vector<int>* free_gpu_slots = nullptr;
  /// Current home node of every datum (index = DataId); -1 unknown.
  const std::vector<int>* data_home = nullptr;
  /// Hybrid placement (see SimulatedExecutorOptions::hybrid): GPU
  /// tasks may fall back to free CPU cores when no device is free,
  /// and MUST fall back when their working set cannot fit the device.
  bool hybrid = false;
  /// Per task: whether its working set fits GPU memory (index =
  /// TaskId). Only consulted when hybrid is true; may be null
  /// otherwise.
  const std::vector<bool>* gpu_fits = nullptr;
  /// Per task: whether spilling to a CPU core is worthwhile (CPU
  /// compute time within the executor's slowdown budget). Tasks that
  /// do not fit the GPU spill regardless. Only consulted when hybrid
  /// is true; may be null otherwise.
  const std::vector<bool>* cpu_spill_ok = nullptr;
};

/// One scheduling decision: run `task` on `node` using `processor`
/// (which may differ from the task's preferred processor in hybrid
/// mode).
struct Assignment {
  TaskId task = -1;
  int node = -1;
  Processor processor = Processor::kCpu;
};

/// Pluggable scheduling policy (Section 3.2). Implementations must be
/// deterministic: given the same view they return the same decision.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Master-side cost of one scheduling decision, seconds. The
  /// simulated executor serializes decisions through the master, so
  /// expensive policies throttle fine-grained workloads — the
  /// "task scheduling overhead" system function of Table 1. The cost
  /// depends on the storage architecture: locality decisions consult
  /// data locations, which is an in-memory lookup for node-local data
  /// the master placed itself but a metadata query against the shared
  /// filesystem otherwise — the reason policy changes are felt more
  /// on shared disks (observation O6).
  virtual double DecisionOverhead(hw::StorageArchitecture storage) const = 0;

  /// Returns the next assignment, or nullopt when no ready task can
  /// be placed (all slots busy). Called repeatedly until nullopt.
  virtual std::optional<Assignment> Decide(const SchedulerView& view) = 0;
};

/// Creates the scheduler implementing `policy`.
std::unique_ptr<Scheduler> MakeScheduler(SchedulingPolicy policy);

/// FIFO by task submission id; places on the first node with a free
/// slot. Cheap decisions (the paper's low-overhead policy).
class TaskGenerationOrderScheduler final : public Scheduler {
 public:
  std::string name() const override { return "task-gen-order"; }
  double DecisionOverhead(hw::StorageArchitecture) const override {
    return 0.8e-3;
  }
  std::optional<Assignment> Decide(const SchedulerView& view) override;
};

/// FIFO by task submission id; places each task on the free node
/// holding the most input bytes. More expensive per decision (it
/// inspects data locations), the paper's high-overhead policy.
class DataLocalityScheduler final : public Scheduler {
 public:
  std::string name() const override { return "data-locality"; }
  double DecisionOverhead(hw::StorageArchitecture storage) const override {
    return storage == hw::StorageArchitecture::kLocalDisk ? 1.5e-3 : 12e-3;
  }
  std::optional<Assignment> Decide(const SchedulerView& view) override;
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_SCHEDULER_H_
