#ifndef TASKBENCH_RUNTIME_SCHEDULER_H_
#define TASKBENCH_RUNTIME_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "hw/cluster.h"
#include "hw/slot_index.h"
#include "runtime/metrics.h"
#include "runtime/ready_queue.h"
#include "runtime/task_graph.h"

namespace taskbench::runtime {

/// Per-task cache of "input bytes per node" for the data-locality
/// policy.
///
/// The locality scheduler weighs candidate nodes by how many input
/// bytes they already hold. Rebuilding that tally from scratch on
/// every visit (the legacy std::map per decision) is wasted work: a
/// task's tally only changes when one of *its* inputs moves. The
/// cache keeps one flat node-ascending (node, bytes) vector per task
/// and a reverse datum→consumers index; a data-home change dirties
/// exactly the consuming tasks' entries.
class LocalityCache {
 public:
  /// `data_home` is the executor's live placement vector (index =
  /// DataId); the cache reads it lazily on rebuild.
  LocalityCache(const TaskGraph& graph, const std::vector<int>* data_home);

  /// Input-bytes-per-node tally of `id`, sorted by node ascending.
  /// Nodes holding none of the task's inputs are absent.
  const std::vector<std::pair<int, uint64_t>>& TallyFor(TaskId id);

  /// Invalidates the cached tallies of every task reading `d`. Call
  /// whenever data_home[d] changes.
  void OnDataHomeChanged(DataId d);

  /// Invariant check (docs/TESTING.md): true iff TallyFor(id) matches
  /// a fresh recompute from the live data_home. A clean-but-stale
  /// entry — some data_home write path forgot OnDataHomeChanged, e.g.
  /// lineage-based re-materialization after a fault — returns false.
  /// Executors sample this behind check_invariants on tallies they
  /// actually used in a decision.
  bool VerifyTally(TaskId id);

 private:
  const TaskGraph& graph_;
  const std::vector<int>* data_home_;
  std::vector<std::vector<TaskId>> consumers_;  ///< datum -> reader tasks
  std::vector<std::vector<std::pair<int, uint64_t>>> tally_;
  std::vector<bool> dirty_;
};

/// The incrementally-maintained cluster state a scheduler decides on.
/// All pointers are owned by the executor and stay valid (and live —
/// they are not snapshots) across the run.
struct SchedulerView {
  const TaskGraph* graph = nullptr;
  /// Ready tasks, bucketed by placement class, FIFO by submission id
  /// within each class (the "task generation order").
  const ReadyQueue* ready = nullptr;
  /// Free CPU-core / GPU-device slots per node with O(1) aggregates.
  const hw::SlotIndex* cpu_slots = nullptr;
  const hw::SlotIndex* gpu_slots = nullptr;
  /// Current home node of every datum (index = DataId); -1 unknown.
  const std::vector<int>* data_home = nullptr;
  /// Cached input-locality tallies; may be null (the locality policy
  /// then computes tallies ad hoc).
  LocalityCache* locality = nullptr;
};

/// One scheduling decision: run `task` on `node` using `processor`
/// (which may differ from the task's preferred processor in hybrid
/// mode).
struct Assignment {
  TaskId task = -1;
  int node = -1;
  Processor processor = Processor::kCpu;
};

/// Pluggable scheduling policy (Section 3.2). Implementations must be
/// deterministic: given the same view they return the same decision.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Master-side cost of one scheduling decision, seconds. The
  /// simulated executor serializes decisions through the master, so
  /// expensive policies throttle fine-grained workloads — the
  /// "task scheduling overhead" system function of Table 1. The cost
  /// depends on the storage architecture: locality decisions consult
  /// data locations, which is an in-memory lookup for node-local data
  /// the master placed itself but a metadata query against the shared
  /// filesystem otherwise — the reason policy changes are felt more
  /// on shared disks (observation O6).
  virtual double DecisionOverhead(hw::StorageArchitecture storage) const = 0;

  /// DecisionOverhead(storage) split by decision phase: popping the
  /// candidate off the ready heaps, consulting data locations, and
  /// picking the target slot. The three components sum exactly to
  /// DecisionOverhead(storage) — the executor relies on that to keep
  /// the profiled breakdown consistent with `scheduler_overhead`.
  virtual SchedulerPhaseBreakdown DecisionPhases(
      hw::StorageArchitecture storage) const = 0;

  /// Returns the next assignment, or nullopt when no ready task can
  /// be placed (all slots busy). Called repeatedly until nullopt.
  /// Both built-in policies run in O(log ready) per call: placement
  /// feasibility is uniform within a ReadyQueue class, so only the
  /// class heads are ever candidates.
  virtual std::optional<Assignment> Decide(const SchedulerView& view) = 0;
};

/// Creates the scheduler implementing `policy`.
std::unique_ptr<Scheduler> MakeScheduler(SchedulingPolicy policy);

/// Parses a policy name (CLI / service config). Accepts the canonical
/// ToString form plus short aliases: "fifo" | "gen" |
/// "task-gen-order", "locality" | "data-locality", "cost" |
/// "cost-model". Returns nullopt for anything else.
std::optional<SchedulingPolicy> ParseSchedulingPolicy(const std::string& name);

/// FIFO by task submission id; places on the first node with a free
/// slot. Cheap decisions (the paper's low-overhead policy).
class TaskGenerationOrderScheduler final : public Scheduler {
 public:
  std::string name() const override { return "task-gen-order"; }
  double DecisionOverhead(hw::StorageArchitecture) const override {
    return 0.8e-3;
  }
  /// No locality phase: the policy never looks at data locations.
  SchedulerPhaseBreakdown DecisionPhases(
      hw::StorageArchitecture) const override {
    return {0.5e-3, 0.0, 0.3e-3};
  }
  std::optional<Assignment> Decide(const SchedulerView& view) override;
};

/// FIFO by task submission id; places each task on the free node
/// holding the most input bytes. More expensive per decision (it
/// inspects data locations), the paper's high-overhead policy.
class DataLocalityScheduler final : public Scheduler {
 public:
  std::string name() const override { return "data-locality"; }
  double DecisionOverhead(hw::StorageArchitecture storage) const override {
    return storage == hw::StorageArchitecture::kLocalDisk ? 1.5e-3 : 12e-3;
  }
  /// The locality lookup dominates on shared storage, where data
  /// locations are a metadata query against the shared filesystem
  /// rather than the master's in-memory placement table.
  SchedulerPhaseBreakdown DecisionPhases(
      hw::StorageArchitecture storage) const override {
    const double locality =
        storage == hw::StorageArchitecture::kLocalDisk ? 0.7e-3 : 11.2e-3;
    return {0.5e-3, locality, 0.3e-3};
  }
  std::optional<Assignment> Decide(const SchedulerView& view) override;
};

/// Scored policy (ROADMAP item 2, docs/SCHEDULERS.md): picks the
/// highest-scoring ready task (HEFT-style upward rank blended with
/// slack and age — the executor installs the score function on the
/// ReadyQueue, see SchedulerConfig) and places it like the locality
/// policy, on the free node holding the most input bytes. The
/// scheduler itself is stateless: the score lives in the ready heaps,
/// so a decision still touches only the four class heads — O(log
/// ready). Hedging and escalation are executor-side mechanisms keyed
/// off this policy, not part of Decide.
class CostModelScheduler final : public Scheduler {
 public:
  std::string name() const override { return "cost-model"; }
  /// Locality lookup cost matches the locality policy (same metadata
  /// queries); the score comparison adds 0.2e-3 to the ready-pop
  /// phase.
  double DecisionOverhead(hw::StorageArchitecture storage) const override {
    return storage == hw::StorageArchitecture::kLocalDisk ? 1.7e-3 : 12.2e-3;
  }
  SchedulerPhaseBreakdown DecisionPhases(
      hw::StorageArchitecture storage) const override {
    const double locality =
        storage == hw::StorageArchitecture::kLocalDisk ? 0.7e-3 : 11.2e-3;
    return {0.7e-3, locality, 0.3e-3};
  }
  std::optional<Assignment> Decide(const SchedulerView& view) override;
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_SCHEDULER_H_
