#include "runtime/multiproc_executor.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <new>
#include <optional>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "obs/metrics.h"
#include "runtime/spsc_ring.h"
#include "storage/block_cache.h"
#include "storage/serializer.h"
#include "storage/shm_arena.h"

#if !defined(_WIN32)
#include <dirent.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include "hw/topology.h"
#endif

namespace taskbench::runtime {

MultiProcExecutor::MultiProcExecutor(RunOptions options)
    : options_(std::move(options)) {}

Result<data::Matrix> MultiProcExecutor::FetchData(const TaskGraph& graph,
                                                  DataId id) const {
  if (id < 0 || id >= graph.num_data()) {
    return Status::InvalidArgument(
        StrFormat("unknown data id %lld", static_cast<long long>(id)));
  }
  const DataEntry& entry = graph.data(id);
  if (!entry.value.has_value()) {
    return Status::NotFound(
        StrFormat("datum %lld has no value", static_cast<long long>(id)));
  }
  return *entry.value;
}

#if defined(_WIN32)

bool MultiProcExecutor::Supported() { return false; }

Result<RunReport> MultiProcExecutor::Execute(TaskGraph&) {
  return Status::Unimplemented(
      "multi-process execution needs fork + POSIX shared memory");
}

#else

namespace {

/// Coordinator -> worker: run this task attempt. `epoch` piggybacks
/// the coordinator's invalidation epoch on the dispatch ring: it
/// advances whenever a previously published directory slot is
/// republished (INOUT rewrites, crash-retry republication), telling
/// the worker to sweep block-cache entries whose stored tag no longer
/// matches the directory. Correctness never depends on the sweep —
/// entries are keyed by directory tag, and arena records are
/// immutable and never reused, so a stale entry is unreachable — the
/// epoch only reclaims budget bytes dead entries would otherwise pin
/// until LRU eviction.
struct TaskMsg {
  int64_t task = -1;
  int32_t attempt = 1;
  uint64_t epoch = 0;
};

/// Worker -> coordinator: the attempt finished. code 0 = success,
/// 1 = retryable task failure (kernel / data error), 2 = fatal
/// (retrying cannot help, e.g. arena exhaustion — fail the run),
/// 3 = invariant violation detected inside the worker (fail the run).
struct CompletionMsg {
  int64_t task = -1;
  int32_t worker = -1;
  int32_t attempt = 1;
  int32_t code = 0;
  /// Arena offset + 1 of the staged-outputs index record (0 = no
  /// outputs staged). The worker only *stages* output records; the
  /// coordinator performs the directory stores when it consumes this
  /// message, so publication is atomic with completion — a worker
  /// dying after staging but before its completion is consumed leaves
  /// the directory untouched and the retry re-reads pre-attempt
  /// values (INOUT tasks are never double-applied).
  uint64_t outputs = 0;
  double start = 0;
  double end = 0;
  double deserialize_s = 0;
  double compute_s = 0;
  double serialize_s = 0;
  char error[196] = {0};
};

/// Per-worker control plane: one SPSC ring per direction. Lives in
/// the MAP_SHARED control segment, so both sides see the same atomics.
struct WorkerChannel {
  SpscRing<TaskMsg, 1024> inbox;       ///< coordinator produces
  SpscRing<CompletionMsg, 256> outbox; ///< worker produces
};

struct ControlHeader {
  std::atomic<int> shutdown{0};
  /// Shared clock origin: steady_clock (CLOCK_MONOTONIC — one clock
  /// for the whole box) nanoseconds captured just before fork, so
  /// coordinator and worker timestamps land on one axis.
  int64_t origin_ns = 0;
};

/// One worker's block-cache counters, in the MAP_SHARED control
/// segment so the coordinator can merge them into the metrics
/// registry after the run. The worker stores absolute values after
/// each task (idempotent — a crashed worker leaves its last published
/// snapshot, which is exactly what it did).
struct CacheStatsSlot {
  std::atomic<int64_t> hits{0};
  std::atomic<int64_t> misses{0};
  std::atomic<int64_t> evictions{0};
  std::atomic<int64_t> invalidations{0};
  std::atomic<uint64_t> peak_bytes{0};
};

static_assert(std::is_trivially_copyable_v<TaskMsg>);
static_assert(std::is_trivially_copyable_v<CompletionMsg>);

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double SecondsSince(int64_t origin_ns) {
  return static_cast<double>(NowNs() - origin_ns) * 1e-9;
}

uint64_t AlignUp64(uint64_t n) { return (n + 63) & ~uint64_t{63}; }

/// Serializes `m` into a fresh arena record ([u64 payload bytes |
/// payload]) WITHOUT touching the directory; returns the record
/// offset. Staged records become visible only when someone stores
/// offset+1 into the directory slot.
Result<uint64_t> StageBlock(storage::ShmArena& arena, const data::Matrix& m) {
  const uint64_t payload = storage::Serializer::SerializedSize(m);
  TB_ASSIGN_OR_RETURN(const uint64_t offset, arena.Allocate(8 + payload));
  uint8_t* record = arena.At(offset);
  std::memcpy(record, &payload, sizeof(payload));
  storage::Serializer::SerializeTo(m, record + 8);
  return offset;
}

/// Coordinator-side: stage `m` and publish it in the directory slot
/// of `d` immediately (used for the pre-fork initial values). The
/// directory stores offset+1 so 0 keeps meaning "never written"; the
/// release store pairs with readers' acquire loads, making the
/// payload bytes visible with the offset.
Status PublishBlock(storage::ShmArena& arena, std::atomic<uint64_t>* directory,
                    DataId d, const data::Matrix& m) {
  TB_ASSIGN_OR_RETURN(const uint64_t offset, StageBlock(arena, m));
  directory[d].store(offset + 1, std::memory_order_release);
  return Status::OK();
}

/// Deserializes the arena record a (nonzero) directory tag points at.
/// Records are immutable once staged and offsets are never reused, so
/// a tag identifies one block version forever — which is what makes
/// tags usable as block-cache versions.
Result<data::Matrix> ReadBlockAt(const storage::ShmArena& arena,
                                 uint64_t tag) {
  const uint8_t* record = arena.At(tag - 1);
  uint64_t payload = 0;
  std::memcpy(&payload, record, sizeof(payload));
  return storage::Serializer::Deserialize(record + 8, payload);
}

Result<data::Matrix> ReadBlock(const storage::ShmArena& arena,
                               const std::atomic<uint64_t>* directory,
                               DataId d) {
  const uint64_t tag = directory[d].load(std::memory_order_acquire);
  if (tag == 0) {
    return Status::NotFound(
        StrFormat("datum %lld has no record in the shm directory; was it "
                  "ever written?",
                  static_cast<long long>(d)));
  }
  return ReadBlockAt(arena, tag);
}

void SetError(CompletionMsg* msg, const Status& status) {
  const std::string text = status.ToString();
  const size_t n = std::min(text.size(), sizeof(msg->error) - 1);
  std::memcpy(msg->error, text.data(), n);
  msg->error[n] = '\0';
}

/// One task attempt inside a worker — the multi-process counterpart
/// of the thread pool's run_task: gather inputs from the arena, run
/// the kernel, publish outputs back into the arena. When `cache` is
/// set, reads go through the worker's version-keyed block cache with
/// the directory tag as the version: a hot shared input deserializes
/// once per worker instead of once per task. With `check` on, each
/// non-OUT param's directory tag is re-loaded after the kernel ran —
/// the anti-dependency (write-after-read) edges of the graph make a
/// republication during execution impossible, so any change is an
/// invariant violation (code 3).
CompletionMsg RunOne(int worker_id, const TaskMsg& msg, const TaskGraph& graph,
                     storage::ShmArena& arena, std::atomic<uint64_t>* directory,
                     int64_t origin_ns, bool check,
                     storage::BlockCache* cache) {
  CompletionMsg out;
  out.task = msg.task;
  out.worker = worker_id;
  out.attempt = msg.attempt;
  out.start = SecondsSince(origin_ns);

  const Task& task = graph.task(msg.task);

  // Materialize inputs (IN + INOUT) and output slots (OUT + INOUT),
  // mirroring the thread-pool layout: kernel inputs are IN values
  // first, then INOUT values aliasing their output slots. IN values
  // are shared with the cache when enabled (no copy on hit); INOUT
  // slots always get private copies the kernel may mutate.
  std::vector<std::shared_ptr<const data::Matrix>> in_values;
  std::vector<data::Matrix> out_values;
  std::vector<DataId> out_ids;
  std::vector<size_t> inout_out_index;
  std::vector<std::pair<DataId, uint64_t>> read_tags;  // for the check
  in_values.reserve(task.spec.params.size());
  out_values.resize(task.spec.params.size());
  size_t num_outputs = 0;
  for (const Param& p : task.spec.params) {
    if (p.dir == Dir::kOut) {
      out_ids.push_back(p.data);
      ++num_outputs;
      continue;
    }
    const uint64_t tag = directory[p.data].load(std::memory_order_acquire);
    if (tag == 0) {
      out.code = 1;
      SetError(&out, Status::NotFound(StrFormat(
                         "datum %lld has no record in the shm directory; "
                         "was it ever written?",
                         static_cast<long long>(p.data))));
      out.end = SecondsSince(origin_ns);
      return out;
    }
    if (check) read_tags.emplace_back(p.data, tag);
    if (p.dir == Dir::kIn) {
      if (cache != nullptr) {
        if (storage::BlockCache::ValuePtr hit =
                cache->Get(static_cast<uint64_t>(p.data), tag)) {
          in_values.push_back(std::move(hit));
          continue;
        }
      }
      const double t0 = SecondsSince(origin_ns);
      Result<data::Matrix> value = ReadBlockAt(arena, tag);
      if (!value.ok()) {
        out.code = 1;
        SetError(&out, value.status());
        out.end = SecondsSince(origin_ns);
        return out;
      }
      out.deserialize_s += SecondsSince(origin_ns) - t0;
      if (cache != nullptr) {
        in_values.push_back(cache->Put(static_cast<uint64_t>(p.data), tag,
                                       std::move(value).value()));
      } else {
        in_values.push_back(std::make_shared<const data::Matrix>(
            std::move(value).value()));
      }
      continue;
    }
    // INOUT: private mutable copy. A cache hit copies the shared
    // entry instead of letting the kernel mutate it; a miss reads the
    // arena directly and is not inserted (this task is about to
    // overwrite the datum, so the entry would be instantly stale).
    bool materialized = false;
    if (cache != nullptr) {
      if (storage::BlockCache::ValuePtr hit =
              cache->Get(static_cast<uint64_t>(p.data), tag)) {
        out_values[num_outputs] = *hit;
        materialized = true;
      }
    }
    if (!materialized) {
      const double t0 = SecondsSince(origin_ns);
      Result<data::Matrix> value = ReadBlockAt(arena, tag);
      if (!value.ok()) {
        out.code = 1;
        SetError(&out, value.status());
        out.end = SecondsSince(origin_ns);
        return out;
      }
      out.deserialize_s += SecondsSince(origin_ns) - t0;
      out_values[num_outputs] = std::move(value).value();
    }
    inout_out_index.push_back(num_outputs);
    out_ids.push_back(p.data);
    ++num_outputs;
  }
  out_values.resize(num_outputs);

  std::vector<const data::Matrix*> inputs;
  std::vector<data::Matrix*> outputs;
  for (const auto& m : in_values) inputs.push_back(m.get());
  for (size_t idx : inout_out_index) inputs.push_back(&out_values[idx]);
  for (data::Matrix& m : out_values) outputs.push_back(&m);

  const double kernel_start = SecondsSince(origin_ns);
  const Status kernel_status = task.spec.kernel(inputs, outputs);
  out.compute_s = SecondsSince(origin_ns) - kernel_start;
  if (!kernel_status.ok()) {
    out.code = 1;
    SetError(&out, kernel_status);
    out.end = SecondsSince(origin_ns);
    return out;
  }

  // Invariant: no input block may be republished while the task that
  // reads it is running — the graph's write-after-read edges order
  // every overwriting task after all readers, and the coordinator
  // never dispatches two live attempts of one task. A moved tag means
  // cached handles and arena reads could disagree: fail the run.
  if (check) {
    for (const auto& [d, tag] : read_tags) {
      const uint64_t now_tag = directory[d].load(std::memory_order_acquire);
      if (now_tag != tag) {
        out.code = 3;
        SetError(&out,
                 Status::FailedPrecondition(StrFormat(
                     "invariant violation: datum %lld republished (tag "
                     "%llu -> %llu) while task %lld was reading it",
                     static_cast<long long>(d),
                     static_cast<unsigned long long>(tag),
                     static_cast<unsigned long long>(now_tag),
                     static_cast<long long>(msg.task))));
        out.end = SecondsSince(origin_ns);
        return out;
      }
    }
  }

  // Stage the outputs: serialize each into its own arena record, then
  // write one index record [u64 count | count x (u64 data id, u64
  // record offset)] referenced from the completion message. The
  // directory is deliberately NOT written here — only the coordinator
  // publishes, when it consumes the completion — so a crash between
  // staging and consumption cannot expose this attempt's outputs to a
  // retry (which would double-apply INOUT tasks).
  std::vector<std::pair<uint64_t, uint64_t>> staged;
  staged.reserve(out_ids.size());
  for (size_t i = 0; i < out_ids.size(); ++i) {
    const double t0 = SecondsSince(origin_ns);
    Result<uint64_t> offset = StageBlock(arena, out_values[i]);
    if (!offset.ok()) {
      out.code = 2;  // arena exhaustion: retrying cannot help
      SetError(&out, offset.status());
      out.end = SecondsSince(origin_ns);
      return out;
    }
    staged.emplace_back(static_cast<uint64_t>(out_ids[i]), *offset);
    out.serialize_s += SecondsSince(origin_ns) - t0;
  }
  if (!staged.empty()) {
    Result<uint64_t> index =
        arena.Allocate(8 + 16 * static_cast<uint64_t>(staged.size()));
    if (!index.ok()) {
      out.code = 2;
      SetError(&out, index.status());
      out.end = SecondsSince(origin_ns);
      return out;
    }
    uint8_t* record = arena.At(*index);
    const uint64_t count = staged.size();
    std::memcpy(record, &count, sizeof(count));
    for (size_t i = 0; i < staged.size(); ++i) {
      std::memcpy(record + 8 + 16 * i, &staged[i].first, 8);
      std::memcpy(record + 8 + 16 * i + 8, &staged[i].second, 8);
    }
    out.outputs = *index + 1;
  }
  // Write-through at the tags the coordinator will publish (staged
  // offset + 1). If this attempt's completion is never consumed —
  // worker declared dead, stale duplicate — those tags never enter
  // the directory, so a crashed attempt's staged outputs are
  // unreachable in every cache; the epoch sweep reclaims their bytes.
  if (cache != nullptr) {
    for (size_t i = 0; i < staged.size(); ++i) {
      cache->Put(staged[i].first, staged[i].second + 1,
                 std::move(out_values[i]));
    }
  }
  out.end = SecondsSince(origin_ns);
  return out;
}

/// Worker process main loop. Never returns — exits with _exit so the
/// child skips atexit handlers, stdio flushing of inherited buffers
/// and (under sanitizers) the leak check, all of which belong to the
/// coordinator.
[[noreturn]] void WorkerMain(int worker_id, const TaskGraph& graph,
                             storage::ShmArena& arena, ControlHeader* header,
                             WorkerChannel* channel,
                             std::atomic<uint64_t>* directory,
                             const std::vector<int>& pin_cpus, bool check,
                             uint64_t cache_bytes,
                             CacheStatsSlot* stats_slot) {
  if (!pin_cpus.empty()) {
    // Best effort: an unpinnable worker is slower, never wrong.
    const Status ignored = hw::PinCurrentThreadToCpus(pin_cpus);
    (void)ignored;
  }
  // Worker-local block cache, created after the fork: each worker
  // process owns private heap entries keyed by the shared directory
  // tags (cache_bytes == 0 disables caching).
  std::optional<storage::BlockCache> cache;
  if (cache_bytes > 0) cache.emplace(cache_bytes);
  uint64_t seen_epoch = 0;
  const int64_t origin_ns = header->origin_ns;
  int idle_polls = 0;
  for (;;) {
    TaskMsg msg;
    if (!channel->inbox.Pop(&msg)) {
      if (header->shutdown.load(std::memory_order_acquire) != 0) _exit(0);
      if (++idle_polls > 256) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      continue;
    }
    idle_polls = 0;
    if (cache.has_value() && msg.epoch != seen_epoch) {
      // The coordinator republished at least one directory slot since
      // our last dispatch: sweep entries whose tag moved on, so dead
      // versions stop pinning budget bytes.
      seen_epoch = msg.epoch;
      cache->EvictStale([directory](uint64_t key) {
        return directory[static_cast<DataId>(key)].load(
            std::memory_order_acquire);
      });
    }
    const CompletionMsg done =
        RunOne(worker_id, msg, graph, arena, directory, origin_ns, check,
               cache.has_value() ? &*cache : nullptr);
    if (cache.has_value() && stats_slot != nullptr) {
      const storage::BlockCache::Stats& s = cache->stats();
      stats_slot->hits.store(s.hits, std::memory_order_relaxed);
      stats_slot->misses.store(s.misses, std::memory_order_relaxed);
      stats_slot->evictions.store(s.evictions, std::memory_order_relaxed);
      stats_slot->invalidations.store(s.invalidations,
                                      std::memory_order_relaxed);
      stats_slot->peak_bytes.store(s.peak_bytes, std::memory_order_relaxed);
    }
    while (!channel->outbox.Push(done)) {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  }
}

/// Arena capacity estimate from the graph: one record per staged
/// initial value plus one per task output write and one index record
/// per attempt (records are never freed), each at the datum's
/// registered size plus framing, with 2x headroom for kernels
/// emitting denser blocks than registered and a 1 MiB floor. The
/// per-attempt terms are scaled by 1 + max_retries: every retry of a
/// crashed or failed attempt re-stages its outputs into fresh
/// records, so an arena sized for exactly one attempt per task would
/// exhaust during the recovery the retry budget promises.
uint64_t EstimateArenaBytes(const TaskGraph& graph, int max_retries) {
  auto record_bytes = [](uint64_t payload) {
    return AlignUp64(payload + 8 /* frame */ + 28 /* wire header */);
  };
  uint64_t initial = 0;
  for (DataId d = 0; d < graph.num_data(); ++d) {
    if (graph.data(d).value.has_value()) {
      initial += record_bytes(graph.data(d).bytes);
    }
  }
  uint64_t per_attempt = 0;
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    uint64_t num_outputs = 0;
    for (const Param& p : graph.task(t).spec.params) {
      if (p.dir == Dir::kIn) continue;
      per_attempt += record_bytes(graph.data(p.data).bytes);
      ++num_outputs;
    }
    if (num_outputs > 0) per_attempt += AlignUp64(8 + 16 * num_outputs);
  }
  const uint64_t attempts =
      1 + static_cast<uint64_t>(std::max(0, max_retries));
  const uint64_t need = initial + attempts * per_attempt;
  return std::max<uint64_t>(2 * need, 1 << 20);
}

/// Threads in the calling process, via procfs; -1 when unknown (no
/// /proc, e.g. macOS). fork() without exec duplicates only the
/// calling thread, so any mutex another thread holds at fork time
/// (allocator, logging, metrics) stays locked forever in the child —
/// a worker then deadlocks on its first allocation. Execute refuses
/// to fork from a multi-threaded process instead of hanging.
int CountProcessThreads() {
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) return -1;
  int n = 0;
  while (const dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++n;
  }
  ::closedir(dir);
  return n;
}

/// Tasks queued to one worker beyond the one it is running — deep
/// enough to hide dispatch latency, shallow enough that the
/// coordinator keeps placement freedom (and far below the ring
/// capacity, so Push never blocks).
constexpr int kMaxInflightPerWorker = 4;

}  // namespace

bool MultiProcExecutor::Supported() { return true; }

Result<RunReport> MultiProcExecutor::Execute(TaskGraph& graph,
                                             const RunContext& ctx) {
  TB_RETURN_IF_ERROR(graph.Validate());
  const int64_t total = graph.num_tasks();
  const int64_t num_data = graph.num_data();
  for (TaskId t = 0; t < total; ++t) {
    if (graph.task(t).spec.kernel == nullptr) {
      return Status::FailedPrecondition(StrFormat(
          "task %lld (%s) has no kernel; simulation-only graphs cannot "
          "run on the multi-process executor",
          static_cast<long long>(t), graph.task(t).spec.type.c_str()));
    }
  }

  const int caller_threads = CountProcessThreads();
  if (caller_threads > 1) {
    return Status::FailedPrecondition(StrFormat(
        "MultiProcExecutor::Execute must be called from a single-threaded "
        "process (found %d threads): workers are forked without exec, so "
        "locks held by other threads at fork time stay locked forever in "
        "the children; join other threads before running (see "
        "docs/SCALE_OUT.md; resident services should use --executor="
        "threads or sim instead)",
        caller_threads));
  }

  const int num_workers = std::max(1, options_.num_procs);
  const hw::Topology& topo = hw::DetectTopology();
  std::vector<int> worker_domain(static_cast<size_t>(num_workers), 0);
  for (int w = 0; w < num_workers; ++w) {
    worker_domain[static_cast<size_t>(w)] =
        topo.domain_of_worker(w, num_workers);
  }

  // ----------------------------------------------------------------
  // Shared-memory data plane: the block arena plus a control segment
  // holding the per-worker rings and the block directory. Everything
  // is mapped before fork so all processes share the pages at the
  // same addresses.
  // ----------------------------------------------------------------
  const uint64_t arena_bytes =
      options_.shm_arena_bytes > 0
          ? options_.shm_arena_bytes
          : EstimateArenaBytes(graph, options_.max_retries);
  TB_ASSIGN_OR_RETURN(storage::ShmArena arena,
                      storage::ShmArena::Create("arena", arena_bytes));

  const bool use_cache = options_.block_cache;
  const uint64_t cache_bytes =
      use_cache ? (options_.block_cache_bytes != 0
                       ? options_.block_cache_bytes
                       : storage::kDefaultBlockCacheBytes)
                : 0;

  const uint64_t header_off = 0;
  const uint64_t channels_off = AlignUp64(header_off + sizeof(ControlHeader));
  const uint64_t directory_off =
      AlignUp64(channels_off + static_cast<uint64_t>(num_workers) *
                                   sizeof(WorkerChannel));
  const uint64_t cache_stats_off =
      AlignUp64(directory_off +
                static_cast<uint64_t>(num_data) * sizeof(std::atomic<uint64_t>));
  const uint64_t control_bytes =
      cache_stats_off +
      static_cast<uint64_t>(num_workers) * sizeof(CacheStatsSlot);
  TB_ASSIGN_OR_RETURN(storage::ShmSegment control,
                      storage::ShmSegment::Create("ctl", control_bytes));
  auto* header = new (control.base() + header_off) ControlHeader();
  auto* channels =
      reinterpret_cast<WorkerChannel*>(control.base() + channels_off);
  for (int w = 0; w < num_workers; ++w) new (&channels[w]) WorkerChannel();
  auto* directory =
      reinterpret_cast<std::atomic<uint64_t>*>(control.base() + directory_off);
  for (DataId d = 0; d < num_data; ++d) {
    new (&directory[d]) std::atomic<uint64_t>(0);
  }
  auto* cache_stats =
      reinterpret_cast<CacheStatsSlot*>(control.base() + cache_stats_off);
  for (int w = 0; w < num_workers; ++w) new (&cache_stats[w]) CacheStatsSlot();

  // Stage initial values into the arena (coordinator-side, pre-fork,
  // so the publications are trivially visible to every worker).
  for (DataId d = 0; d < num_data; ++d) {
    const DataEntry& entry = graph.data(d);
    if (!entry.value.has_value()) continue;
    TB_RETURN_IF_ERROR(PublishBlock(arena, directory, d, *entry.value));
  }

  header->origin_ns = NowNs();

  // ----------------------------------------------------------------
  // Fork the workers. Kernels (std::function) and the graph ride into
  // the children via copy-on-write; flush stdio first so buffered
  // output is not duplicated into every child.
  // ----------------------------------------------------------------
  std::fflush(stdout);
  std::fflush(stderr);
  std::vector<pid_t> pids(static_cast<size_t>(num_workers), -1);
  const bool pin = options_.pin_workers && topo.num_domains() > 1;
  for (int w = 0; w < num_workers; ++w) {
    const pid_t pid = fork();
    if (pid == 0) {
      const std::vector<int> cpus =
          pin ? topo.domains[static_cast<size_t>(
                               worker_domain[static_cast<size_t>(w)])].cpus
              : std::vector<int>{};
      WorkerMain(w, graph, arena, header, &channels[w], directory, cpus,
                 options_.check_invariants, cache_bytes, &cache_stats[w]);
    }
    if (pid < 0) {
      header->shutdown.store(1, std::memory_order_release);
      for (int k = 0; k < w; ++k) {
        kill(pids[static_cast<size_t>(k)], SIGKILL);
        waitpid(pids[static_cast<size_t>(k)], nullptr, 0);
      }
      return Status::Internal(
          StrFormat("fork of worker %d failed: %s", w, std::strerror(errno)));
    }
    pids[static_cast<size_t>(w)] = pid;
  }

  // ----------------------------------------------------------------
  // Coordinator loop: dependency counting, topology-aware dispatch,
  // completion draining, liveness. Runs entirely in this thread; no
  // block bytes ever pass through here.
  // ----------------------------------------------------------------
  const int64_t origin_ns = header->origin_ns;
  std::vector<int> remaining(static_cast<size_t>(total), 0);
  std::deque<std::pair<TaskId, int>> ready;  // (task, attempt), FIFO
  struct Delayed {
    double when = 0;
    TaskId task = -1;
    int attempt = 1;
  };
  std::vector<Delayed> delayed;  // retry backoff queue
  std::vector<char> completed(static_cast<size_t>(total), 0);
  std::vector<TaskRecord> records(static_cast<size_t>(total));
  std::vector<TaskAttempt> attempts;
  int64_t retries = 0;
  int64_t dead_workers = 0;
  int64_t num_completed = 0;
  std::vector<int> inflight(static_cast<size_t>(num_workers), 0);
  std::vector<char> alive(static_cast<size_t>(num_workers), 1);
  std::vector<std::vector<std::pair<TaskId, int>>> inflight_tasks(
      static_cast<size_t>(num_workers));
  // Domain whose worker produced each datum's current version; -1 for
  // initial (coordinator-staged) data. The locality signal of
  // placement, exactly like home_node feeds the simulated scheduler.
  std::vector<int> producer_domain(static_cast<size_t>(num_data), -1);
  std::vector<uint64_t> domain_bytes(
      static_cast<size_t>(std::max(1, topo.num_domains())), 0);

  for (TaskId t = 0; t < total; ++t) {
    const int deps = static_cast<int>(graph.task(t).deps.size());
    remaining[static_cast<size_t>(t)] = deps;
    if (deps == 0) ready.emplace_back(t, 1);
  }

  // Invalidation epoch piggybacked on every dispatch: bumped whenever
  // a previously published directory slot is republished, so workers
  // know when a cache sweep could reclaim dead entries.
  uint64_t inval_epoch = 0;

  bool failed = false;
  Status failure;
  auto fail_run = [&](Status status) {
    if (!failed) {
      failed = true;
      failure = std::move(status);
    }
  };

  // Places one ready task: prefer the least-loaded worker in the
  // domain owning most of the task's input bytes; a remote worker
  // wins only when strictly less loaded (2x inflight + 1 domain
  // penalty), which is the process-level version of the thread pool's
  // domain-biased steal order.
  auto dispatch = [&](TaskId t, int attempt) -> bool {
    int preferred = -1;
    if (topo.num_domains() > 1) {
      std::fill(domain_bytes.begin(), domain_bytes.end(), 0);
      for (const Param& p : graph.task(t).spec.params) {
        if (p.dir == Dir::kOut) continue;
        const int pd = producer_domain[static_cast<size_t>(p.data)];
        if (pd >= 0) {
          domain_bytes[static_cast<size_t>(pd)] +=
              graph.data(p.data).bytes;
        }
      }
      uint64_t best_bytes = 0;
      for (size_t dom = 0; dom < domain_bytes.size(); ++dom) {
        if (domain_bytes[dom] > best_bytes) {
          best_bytes = domain_bytes[dom];
          preferred = static_cast<int>(dom);
        }
      }
    }
    int best = -1;
    int best_score = INT32_MAX;
    for (int w = 0; w < num_workers; ++w) {
      if (!alive[static_cast<size_t>(w)]) continue;
      if (inflight[static_cast<size_t>(w)] >= kMaxInflightPerWorker) continue;
      const int score =
          2 * inflight[static_cast<size_t>(w)] +
          (preferred >= 0 && worker_domain[static_cast<size_t>(w)] != preferred
               ? 1
               : 0);
      if (score < best_score) {
        best_score = score;
        best = w;
      }
    }
    if (best < 0) return false;  // every live worker is at capacity
    TaskMsg msg;
    msg.task = t;
    msg.attempt = attempt;
    msg.epoch = inval_epoch;
    if (!channels[best].inbox.Push(msg)) return false;
    ++inflight[static_cast<size_t>(best)];
    inflight_tasks[static_cast<size_t>(best)].emplace_back(t, attempt);
    return true;
  };

  auto handle_completion = [&](const CompletionMsg& msg) {
    auto& mine = inflight_tasks[static_cast<size_t>(msg.worker)];
    for (auto it = mine.begin(); it != mine.end(); ++it) {
      if (it->first == msg.task && it->second == msg.attempt) {
        mine.erase(it);
        --inflight[static_cast<size_t>(msg.worker)];
        break;
      }
    }
    if (completed[static_cast<size_t>(msg.task)]) return;  // stale duplicate
    if (msg.code == 0) {
      // Publish the attempt's staged outputs. Doing this here — not
      // in the worker — makes publication atomic with completion:
      // either the coordinator consumed the completion (outputs
      // visible, task done, never re-run) or it did not (directory
      // untouched, a retry re-reads pre-attempt values). The stale
      // check above also keeps a slower duplicate attempt from
      // overwriting versions successors already read.
      if (msg.outputs != 0) {
        const uint8_t* record = arena.At(msg.outputs - 1);
        uint64_t count = 0;
        std::memcpy(&count, record, sizeof(count));
        for (uint64_t i = 0; i < count; ++i) {
          uint64_t id = 0;
          uint64_t offset = 0;
          std::memcpy(&id, record + 8 + 16 * i, 8);
          std::memcpy(&offset, record + 8 + 16 * i + 8, 8);
          // Republishing an already-written slot (INOUT rewrite, or
          // OUT over an initial value) strands the old tag in worker
          // caches: advance the invalidation epoch so the next
          // dispatch triggers a sweep.
          if (directory[static_cast<DataId>(id)].load(
                  std::memory_order_relaxed) != 0) {
            ++inval_epoch;
          }
          directory[static_cast<DataId>(id)].store(
              offset + 1, std::memory_order_release);
        }
      }
      completed[static_cast<size_t>(msg.task)] = 1;
      ++num_completed;
      const Task& task = graph.task(msg.task);
      TaskRecord& rec = records[static_cast<size_t>(msg.task)];
      rec.task = msg.task;
      rec.type = task.spec.type;
      rec.level = task.level;
      rec.processor = Processor::kCpu;
      rec.node = msg.worker;
      rec.slot = 0;  // workers are single-threaded: one slot each
      rec.stages = perf::StageTimes{};
      rec.stages.deserialize = msg.deserialize_s;
      rec.stages.parallel_fraction = msg.compute_s;
      rec.stages.serialize = msg.serialize_s;
      rec.start = msg.start;
      rec.end = msg.end;
      rec.attempt = msg.attempt;
      for (const Param& p : task.spec.params) {
        if (p.dir != Dir::kIn) {
          producer_domain[static_cast<size_t>(p.data)] =
              worker_domain[static_cast<size_t>(msg.worker)];
        }
      }
      if (options_.max_retries > 0) {
        attempts.push_back(TaskAttempt{msg.task, msg.attempt, msg.worker,
                                       Processor::kCpu, msg.start, msg.end,
                                       AttemptOutcome::kCompleted});
      }
      for (TaskId succ : task.successors) {
        if (--remaining[static_cast<size_t>(succ)] == 0) {
          ready.emplace_back(succ, 1);
        }
      }
      return;
    }
    // Task failure inside a live worker. Fatal failures end the run:
    // code 2 is arena exhaustion (note that every retry re-stages its
    // outputs, so heavy retrying needs extra arena headroom), code 3
    // is an invariant violation the worker detected.
    if (msg.code >= 2 || msg.attempt > options_.max_retries) {
      fail_run(Status::Internal(msg.error).WithContext(StrFormat(
          msg.code == 2
              ? "task %lld attempt %d on worker %d (each retry re-stages "
                "its outputs; raise RunOptions::shm_arena_bytes when "
                "retrying under memory pressure)"
              : "task %lld attempt %d on worker %d",
          static_cast<long long>(msg.task), msg.attempt, msg.worker)));
      return;
    }
    ++retries;
    if (options_.max_retries > 0) {
      attempts.push_back(TaskAttempt{msg.task, msg.attempt, msg.worker,
                                     Processor::kCpu, msg.start, msg.end,
                                     AttemptOutcome::kFailed});
    }
    delayed.push_back(Delayed{
        SecondsSince(origin_ns) +
            options_.retry_backoff_s *
                static_cast<double>(1ull << std::min(msg.attempt - 1, 30)),
        msg.task, msg.attempt + 1});
  };

  // A dead worker's queued/running tasks become kNodeLost attempts
  // and are re-dispatched under the retry budget. Blocks the worker
  // already published live in the arena, so unlike a real cluster
  // node loss nothing has to be recomputed (lost_blocks stays 0).
  auto check_liveness = [&] {
    for (int w = 0; w < num_workers; ++w) {
      if (!alive[static_cast<size_t>(w)]) continue;
      int status = 0;
      const pid_t r = waitpid(pids[static_cast<size_t>(w)], &status, WNOHANG);
      if (r == 0) continue;  // still running, nothing to reap
      // r < 0 (ECHILD) happens when the embedder ignores SIGCHLD and
      // children are auto-reaped: waitpid can never observe the exit.
      // Ask the kernel directly — only a worker whose pid is gone is
      // dead; treating ECHILD as "alive" would spin forever on a
      // crashed worker's in-flight tasks.
      if (r < 0 && kill(pids[static_cast<size_t>(w)], 0) == 0) continue;
      alive[static_cast<size_t>(w)] = 0;
      ++dead_workers;
      // Completions the worker pushed before dying are still in its
      // (shared-memory) outbox — honor them before declaring losses.
      CompletionMsg msg;
      while (channels[w].outbox.Pop(&msg)) handle_completion(msg);
      auto lost = std::move(inflight_tasks[static_cast<size_t>(w)]);
      inflight_tasks[static_cast<size_t>(w)].clear();
      inflight[static_cast<size_t>(w)] = 0;
      const double now = SecondsSince(origin_ns);
      for (const auto& [task, attempt] : lost) {
        if (completed[static_cast<size_t>(task)]) continue;
        if (options_.max_retries > 0) {
          attempts.push_back(TaskAttempt{task, attempt, w, Processor::kCpu, 0,
                                         now, AttemptOutcome::kNodeLost});
        }
        if (attempt > options_.max_retries) {
          fail_run(Status::Internal(StrFormat(
              "task %lld lost with worker %d (attempt %d); retry budget "
              "exhausted",
              static_cast<long long>(task), w, attempt)));
          return;
        }
        ++retries;
        delayed.push_back(Delayed{
            now + options_.retry_backoff_s *
                      static_cast<double>(1ull << std::min(attempt - 1, 30)),
            task, attempt + 1});
      }
    }
    if (!failed && num_completed < total &&
        std::none_of(alive.begin(), alive.end(),
                     [](char a) { return a != 0; })) {
      fail_run(Status::Internal("all workers died before the run finished"));
    }
  };

  int liveness_tick = 0;
  while (!failed && num_completed < total) {
    if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
      fail_run(Status::Cancelled("run cancelled"));
      break;
    }
    bool progress = false;
    if (!delayed.empty()) {
      const double now = SecondsSince(origin_ns);
      for (size_t i = 0; i < delayed.size();) {
        if (delayed[i].when <= now) {
          ready.emplace_back(delayed[i].task, delayed[i].attempt);
          delayed[i] = delayed.back();
          delayed.pop_back();
          progress = true;
        } else {
          ++i;
        }
      }
    }
    while (!ready.empty()) {
      const auto [t, attempt] = ready.front();
      if (!dispatch(t, attempt)) break;
      ready.pop_front();
      progress = true;
    }
    for (int w = 0; w < num_workers && !failed; ++w) {
      if (!alive[static_cast<size_t>(w)]) continue;
      CompletionMsg msg;
      while (channels[w].outbox.Pop(&msg)) {
        progress = true;
        handle_completion(msg);
        if (failed) break;
      }
    }
    if (failed) break;
    if (!progress || ++liveness_tick % 64 == 0) check_liveness();
    if (!progress) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }

  // Shut the plane down: workers exit once their inbox drains and the
  // flag is up; SIGKILL is the backstop for workers stuck in a kernel
  // after a failed run.
  header->shutdown.store(1, std::memory_order_release);
  const int64_t reap_deadline_ns = NowNs() + 5'000'000'000LL;
  for (int w = 0; w < num_workers; ++w) {
    if (!alive[static_cast<size_t>(w)]) continue;
    for (;;) {
      const pid_t r = waitpid(pids[static_cast<size_t>(w)], nullptr, WNOHANG);
      if (r == pids[static_cast<size_t>(w)]) break;
      // ECHILD + pid gone: auto-reaped (embedder ignores SIGCHLD).
      if (r < 0 && kill(pids[static_cast<size_t>(w)], 0) != 0) break;
      if (NowNs() > reap_deadline_ns) {
        kill(pids[static_cast<size_t>(w)], SIGKILL);
        waitpid(pids[static_cast<size_t>(w)], nullptr, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  if (failed) return failure;

  // Persist final values onto the graph entries (the arena unmaps
  // when this function returns).
  for (DataId d = 0; d < num_data; ++d) {
    if (directory[d].load(std::memory_order_acquire) == 0) continue;
    TB_ASSIGN_OR_RETURN(data::Matrix value, ReadBlock(arena, directory, d));
    graph.mutable_data(d).value = std::move(value);
  }

  double makespan = 0;
  for (const TaskRecord& rec : records) {
    makespan = std::max(makespan, rec.end);
  }

  if (options_.check_invariants) {
    // Conservation: workers run tasks one at a time, so total busy
    // time cannot exceed workers x makespan (all timestamps share the
    // CLOCK_MONOTONIC origin written into the control header).
    double busy = 0;
    for (const TaskRecord& rec : records) busy += rec.duration();
    const double cap = makespan * num_workers;
    if (busy > cap + 1e-9 * cap + 1e-12) {
      return Status::FailedPrecondition(StrFormat(
          "invariant violation: total busy time %.17g exceeds %d "
          "workers x makespan %.17g",
          busy, num_workers, makespan));
    }
  }

  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& registry = *options_.metrics;
    registry.gauge("pool.procs")->Set(num_workers);
    registry.gauge("pool.domains")->Set(topo.num_domains());
    if (retries > 0) registry.counter("pool.retries")->Add(retries);
    if (dead_workers > 0) {
      registry.counter("pool.worker_crashes")->Add(dead_workers);
    }
    if (use_cache) {
      // Workers published their last stats snapshot into the shared
      // control segment after each task; sum them here (same names as
      // the thread pool's cache counters, so dashboards line up).
      int64_t hits = 0, misses = 0, evictions = 0, invalidations = 0;
      uint64_t peak = 0;
      for (int w = 0; w < num_workers; ++w) {
        hits += cache_stats[w].hits.load(std::memory_order_relaxed);
        misses += cache_stats[w].misses.load(std::memory_order_relaxed);
        evictions += cache_stats[w].evictions.load(std::memory_order_relaxed);
        invalidations +=
            cache_stats[w].invalidations.load(std::memory_order_relaxed);
        peak = std::max(
            peak, cache_stats[w].peak_bytes.load(std::memory_order_relaxed));
      }
      registry.counter("cache.hits")->Add(hits);
      registry.counter("cache.misses")->Add(misses);
      registry.counter("cache.evictions")->Add(evictions);
      registry.counter("cache.invalidations")->Add(invalidations);
      registry.gauge("cache.peak_bytes")->SetMax(static_cast<double>(peak));
    }
    for (const TaskRecord& rec : records) {
      registry
          .histogram(StrFormat("task.%s.deserialize_s", rec.type.c_str()))
          ->Record(rec.stages.deserialize);
      registry.histogram(StrFormat("task.%s.compute_s", rec.type.c_str()))
          ->Record(rec.stages.parallel_fraction);
      registry.histogram(StrFormat("task.%s.serialize_s", rec.type.c_str()))
          ->Record(rec.stages.serialize);
      registry.histogram(StrFormat("task.%s.duration_s", rec.type.c_str()))
          ->Record(rec.duration());
    }
  }

  RunReport report;
  report.records = std::move(records);
  report.makespan = makespan;
  report.faults.retries = retries;
  report.faults.dead_nodes = dead_workers;
  report.attempts = std::move(attempts);
  return report;
}

#endif  // !defined(_WIN32)

}  // namespace taskbench::runtime
