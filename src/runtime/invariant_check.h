#ifndef TASKBENCH_RUNTIME_INVARIANT_CHECK_H_
#define TASKBENCH_RUNTIME_INVARIANT_CHECK_H_

#include <cstddef>
#include <vector>

#include "runtime/task_graph.h"

namespace taskbench::runtime {

/// Precomputed writer ordinals backing the executors' online version
/// checks (RunOptions::check_invariants).
///
/// For every (task, param) pair the oracle knows which version of the
/// datum the access must observe, derived purely from submission
/// order — the same order the TaskGraph used to derive dependencies:
///
///   - a read (IN) must see version = number of writers submitted
///     before the reading task;
///   - a write (OUT / INOUT) publishes version = its 1-based ordinal
///     among the datum's writers. An INOUT's read side expects its
///     write ordinal minus one.
///
/// Ordinals are *set*, never incremented, by the executors, so a
/// retried or recomputed attempt republishing an output is idempotent
/// and cannot trip the check.
class VersionOracle {
 public:
  VersionOracle() = default;

  static VersionOracle Build(const TaskGraph& graph);

  bool empty() const { return offsets_.empty(); }

  /// Ordinal of param `param_index` of task `t` (see class comment).
  int ordinal(TaskId t, size_t param_index) const {
    return ordinals_[offsets_[static_cast<size_t>(t)] + param_index];
  }

 private:
  /// One entry per task param, tasks concatenated in id order.
  std::vector<int> ordinals_;
  /// Start of each task's params in `ordinals_`.
  std::vector<size_t> offsets_;
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_INVARIANT_CHECK_H_
