#ifndef TASKBENCH_RUNTIME_TASK_GRAPH_H_
#define TASKBENCH_RUNTIME_TASK_GRAPH_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "data/matrix.h"
#include "perf/task_cost.h"

namespace taskbench::runtime {

using TaskId = int64_t;
using DataId = int64_t;

/// Direction of a task parameter, the COMPSs annotation that drives
/// automatic dependency detection (Section 3.1).
enum class Dir { kIn, kOut, kInOut };

/// One task parameter: a logical datum plus its access direction.
struct Param {
  DataId data;
  Dir dir;
};

/// Kernel signature for real execution: reads `inputs` (IN then INOUT
/// params, in declaration order), writes `outputs` (OUT then INOUT).
using KernelFn = std::function<Status(
    const std::vector<const data::Matrix*>& inputs,
    const std::vector<data::Matrix*>& outputs)>;

/// Everything the runtime needs to know about one submitted task.
struct TaskSpec {
  /// Task type name, e.g. "matmul_func"; metrics aggregate by type
  /// (Section 4.2 "tasks running the same code are aggregated").
  std::string type;
  std::vector<Param> params;
  /// Kernel for the real (thread-pool) execution path. May be null
  /// when the graph is only simulated.
  KernelFn kernel;
  /// Cost descriptor for the simulated path and the analytic model.
  perf::TaskCost cost;
  /// Processor the parallel fraction targets when accelerating.
  Processor processor = Processor::kCpu;
};

/// A task node: the spec plus the dependencies the runtime derived.
struct Task {
  TaskId id = -1;
  TaskSpec spec;
  std::vector<TaskId> deps;        ///< must complete before this task
  std::vector<TaskId> successors;  ///< tasks depending on this one
  int level = 0;                   ///< longest-path depth in the DAG
};

/// A logical datum (usually one block) tracked by the runtime.
struct DataEntry {
  DataId id = -1;
  std::string name;
  uint64_t bytes = 0;
  /// Node the datum currently lives on (locality scheduling input);
  /// -1 = unplaced.
  int home_node = -1;
  /// Materialized value; absent in simulation-only graphs.
  std::optional<data::Matrix> value;
  /// Version counter; bumped on every write (diagnostics).
  int version = 0;
};

/// The workflow DAG builder — the COMPSs-equivalent runtime frontend.
///
/// Applications register data, then submit tasks with IN/OUT/INOUT
/// parameter annotations; the graph derives true (RAW), anti (WAR)
/// and output (WAW) dependencies from the access history of each
/// datum, exactly as a task-based system builds its execution DAG
/// (Section 3.1). The DAG shape exposes the paper's structural
/// metrics: width = degree of task parallelism, height = degree of
/// task dependency.
class TaskGraph {
 public:
  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;
  TaskGraph(TaskGraph&&) = default;
  TaskGraph& operator=(TaskGraph&&) = default;

  /// Registers a logical datum of `bytes` (simulation mode).
  DataId AddData(uint64_t bytes, std::string name = "", int home_node = -1);

  /// Registers a materialized datum (real-execution mode).
  DataId AddData(data::Matrix value, std::string name = "",
                 int home_node = -1);

  /// Submits a task; dependencies are derived automatically.
  /// Fails when a parameter references an unknown datum or the spec
  /// has no parameters.
  Result<TaskId> Submit(TaskSpec spec);

  int64_t num_tasks() const { return static_cast<int64_t>(tasks_.size()); }
  int64_t num_data() const { return static_cast<int64_t>(data_.size()); }

  const Task& task(TaskId id) const { return tasks_[static_cast<size_t>(id)]; }
  const DataEntry& data(DataId id) const {
    return data_[static_cast<size_t>(id)];
  }
  DataEntry& mutable_data(DataId id) { return data_[static_cast<size_t>(id)]; }

  /// Tasks grouped by DAG level (level = longest dependency path from
  /// any root). The paper's "parallel task execution time" metric is
  /// computed per level.
  std::vector<std::vector<TaskId>> LevelSets() const;

  /// Maximum number of tasks in one level — the DAG width feature of
  /// the correlation analysis (Figure 11).
  int64_t MaxWidth() const;

  /// Number of levels — the DAG height feature.
  int64_t MaxHeight() const;

  /// Graphviz DOT rendering (Figure 6 style: one node per task,
  /// labeled with type; edges are dependencies).
  std::string ToDot() const;

  /// Validates the graph is acyclic and consistent (defensive; the
  /// builder cannot create cycles, but subclasses of executors rely
  /// on this invariant).
  Status Validate() const;

 private:
  struct AccessHistory {
    TaskId last_writer = -1;
    std::vector<TaskId> readers_since_write;
  };

  std::vector<Task> tasks_;
  std::vector<DataEntry> data_;
  std::vector<AccessHistory> history_;
};

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_TASK_GRAPH_H_
