#ifndef TASKBENCH_RUNTIME_TRACE_H_
#define TASKBENCH_RUNTIME_TRACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/metrics.h"

namespace taskbench::runtime {

/// Renders a run report as a Chrome-tracing JSON document (load via
/// chrome://tracing or https://ui.perfetto.dev). This is the
/// reproduction counterpart of the Paraver traces the paper collects
/// from the PyCOMPSs runtime (Section 4.4.3): one process per
/// cluster node, one lane per concurrently busy execution slot, one
/// slice per task with nested slices for the task processing stages
/// (deserialize, user code, serialize). Under fault injection,
/// completed tasks that needed retries are labelled with their final
/// attempt number and every failed attempt (node crash, device loss,
/// storage fault) is rendered as its own "attempt" slice, so recovery
/// behaviour is visible on the timeline.
std::string ChromeTraceJson(const RunReport& report);

/// Writes ChromeTraceJson(report) to `path`.
Status WriteChromeTrace(const RunReport& report, const std::string& path);

/// Assigns each record an execution lane within its node such that
/// overlapping tasks never share a lane (greedy interval coloring).
/// Returned vector is index-aligned with report.records. Shared by
/// the trace exporter and the ASCII Gantt renderer.
std::vector<int> AssignLanes(const std::vector<TaskRecord>& records);

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_TRACE_H_
