#ifndef TASKBENCH_RUNTIME_TRACE_H_
#define TASKBENCH_RUNTIME_TRACE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/metrics.h"
#include "runtime/task_graph.h"

namespace taskbench::runtime {

/// Optional extras for the trace exporter.
struct TraceOptions {
  /// When set together with `flow_events`, dependency edges are
  /// rendered as flow arrows from each producer slice to its consumer
  /// slices. The graph must be the one the report was executed from.
  const TaskGraph* graph = nullptr;
  bool flow_events = false;
};

/// Streams a run report as a Chrome-tracing JSON document (load via
/// chrome://tracing or https://ui.perfetto.dev). This is the
/// reproduction counterpart of the Paraver traces the paper collects
/// from the PyCOMPSs runtime (Section 4.4.3): one process per
/// cluster node, one lane per concurrently busy execution slot, one
/// slice per task with nested slices for the task processing stages
/// (deserialize, user code, serialize). Under fault injection,
/// completed tasks that needed retries are labelled with their final
/// attempt number and every failed attempt (node crash, device loss,
/// storage fault) is rendered as its own "attempt" slice, so recovery
/// behaviour is visible on the timeline.
///
/// Events are streamed into `out` one at a time; memory stays
/// constant in the number of tasks (aside from the O(records) lane
/// assignment), so million-task runs export without materializing a
/// multi-hundred-MB string.
void StreamChromeTrace(const RunReport& report, std::ostream& out,
                       const TraceOptions& options = {});

/// StreamChromeTrace rendered into a string. Prefer WriteChromeTrace
/// (or StreamChromeTrace on your own stream) for large runs.
std::string ChromeTraceJson(const RunReport& report,
                            const TraceOptions& options = {});

/// Streams the trace straight to `path` (constant memory).
Status WriteChromeTrace(const RunReport& report, const std::string& path,
                        const TraceOptions& options = {});

/// Assigns each record an execution lane within its node such that
/// overlapping tasks never share a lane (greedy interval coloring).
/// Returned vector is index-aligned with report.records. Shared by
/// the trace exporter and the ASCII Gantt renderer.
std::vector<int> AssignLanes(const std::vector<TaskRecord>& records);

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_TRACE_H_
