#ifndef TASKBENCH_RUNTIME_EXECUTOR_FACTORY_H_
#define TASKBENCH_RUNTIME_EXECUTOR_FACTORY_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "hw/cluster.h"
#include "runtime/executor.h"
#include "runtime/run_options.h"
#include "storage/block_storage.h"

namespace taskbench::runtime {

/// The three execution planes, as selected by the `--executor` flag
/// every binary shares: host threads (real compute), the discrete-
/// event cluster simulation, and forked shared-memory processes.
enum class ExecutorKind {
  kThreads,
  kSim,
  kProcs,
};

/// Parses a `--executor` value: "threads" | "sim" | "procs".
Result<ExecutorKind> ParseExecutorKind(std::string_view name);

/// The canonical flag spelling of `kind` ("threads", "sim", "procs").
std::string_view ExecutorKindName(ExecutorKind kind);

/// Everything MakeExecutor needs. `cluster` feeds only the simulated
/// plane; `store` only the thread pool (null = private in-memory
/// store when options.use_storage is set).
struct ExecutorSpec {
  ExecutorKind kind = ExecutorKind::kThreads;
  RunOptions options;
  hw::ClusterSpec cluster = hw::MinotauroCluster();
  std::shared_ptr<storage::BlockStorage> store;
};

/// The one place an executor is picked at runtime. Fails with
/// Unimplemented when kProcs is requested on a platform without the
/// multi-process plane, so every caller reports the same error.
Result<std::unique_ptr<Executor>> MakeExecutor(const ExecutorSpec& spec);

}  // namespace taskbench::runtime

#endif  // TASKBENCH_RUNTIME_EXECUTOR_FACTORY_H_
