#include "check/differential.h"

#include <cmath>
#include <cstdint>
#include <memory>
#include <sstream>
#include <utility>

#include "check/digest.h"
#include "check/invariants.h"
#include "common/strings.h"
#include "data/kernels.h"
#include "hw/cluster.h"
#include "runtime/executor_factory.h"
#include "runtime/fault.h"
#include "runtime/metrics_export.h"
#include "runtime/multiproc_executor.h"
#include "runtime/run_options.h"
#include "runtime/trace.h"
#include "obs/json.h"
#include "storage/block_storage.h"
#include "storage/faulty_storage.h"

namespace taskbench::check {

namespace {

using data::KernelVariant;
using data::Matrix;
using runtime::DataId;
using runtime::RunOptions;
using runtime::RunReport;

/// Restores the global kernel-dispatch variant on scope exit so a
/// failing leg cannot leak a pinned variant into later workloads.
class ScopedKernelVariant {
 public:
  explicit ScopedKernelVariant(KernelVariant variant)
      : saved_(data::DefaultKernelVariant()) {
    data::SetDefaultKernelVariant(variant);
  }
  ~ScopedKernelVariant() { data::SetDefaultKernelVariant(saved_); }

 private:
  KernelVariant saved_;
};

double MaxAbs(const Matrix& m) {
  double v = 0;
  for (int64_t i = 0; i < m.size(); ++i) {
    v = std::max(v, std::abs(m.data()[i]));
  }
  return v;
}

/// Everything one real (thread-pool) leg produced.
struct RealRun {
  Status status;
  std::vector<Matrix> values;  ///< aligned with workload.compare
  RunReport report;
};

struct RealConfig {
  std::string name;
  int threads = 1;
  bool use_storage = false;
  KernelVariant kernels = KernelVariant::kNaive;
  bool faulty_storage = false;
  /// Versioned per-worker block cache (RunOptions::block_cache); the
  /// naive cache legs must stay bit-exact with their uncached twins.
  bool cache = false;
  /// > 0 selects the multi-process executor with this many forked
  /// workers (threads/use_storage/faulty_storage are then ignored —
  /// the shm arena is the storage).
  int procs = 0;
  /// Cost-model policy with an immediate hedge trigger (hedge_min_s
  /// = 0): idle workers race speculative duplicates against the
  /// primaries; the claim protocol must keep values bit-exact.
  bool cost_hedge = false;
};

RealRun RunReal(const WorkloadSpec& spec, const RealConfig& config) {
  RealRun out;
  auto built = BuildWorkload(spec);
  if (!built.ok()) {
    out.status = built.status();
    return out;
  }
  ScopedKernelVariant scoped(config.kernels);
  RunOptions options;
  options.num_threads = config.threads;
  options.use_storage = config.use_storage;
  options.check_invariants = true;
  options.block_cache = config.cache;
  if (config.cost_hedge) {
    options.policy = SchedulingPolicy::kCostModel;
    options.sched.hedge_min_s = 0;
  }
  if (config.procs > 0) {
    // Multi-process leg: forked workers + shared-memory arena. The
    // kernel variant pin above rides into the workers via fork.
    options.num_procs = config.procs;
    runtime::ExecutorSpec exec_spec;
    exec_spec.kind = runtime::ExecutorKind::kProcs;
    exec_spec.options = options;
    auto executor_or = runtime::MakeExecutor(exec_spec);
    if (!executor_or.ok()) {
      out.status = executor_or.status();
      return out;
    }
    runtime::Executor& executor = **executor_or;
    auto result = executor.Run(built->graph);
    if (!result.ok()) {
      out.status = result.status();
      return out;
    }
    out.report = std::move(result).value();
    InvariantContext context;
    context.num_threads = config.procs;
    out.status = VerifyReport(built->graph, out.report, context);
    if (!out.status.ok()) return out;
    out.values.reserve(built->compare.size());
    for (DataId d : built->compare) {
      auto value = executor.Fetch(built->graph, d);
      if (!value.ok()) {
        out.status = value.status().WithContext(
            StrFormat("fetching datum %lld", static_cast<long long>(d)));
        return out;
      }
      out.values.push_back(std::move(value).value());
    }
    return out;
  }
  std::shared_ptr<storage::FaultyStorage> faulty;
  std::shared_ptr<storage::BlockStorage> store;
  if (config.faulty_storage) {
    // A transient fault every so often, healing after a couple of
    // injected failures each time — exercised through the retry loop.
    faulty = std::make_shared<storage::FaultyStorage>(
        std::make_shared<storage::InMemoryStorage>());
    // Executor staging writes every initial datum before the worker
    // pool (and its retry loop) exists, so the put injector must not
    // fire until staging is done.
    int initial_puts = 0;
    for (DataId d = 0; d < built->graph.num_data(); ++d) {
      if (built->graph.data(d).value.has_value()) ++initial_puts;
    }
    faulty->ops_until_get_failure = 7;
    faulty->get_failures_remaining = 2;
    faulty->ops_until_put_failure = initial_puts + 11;
    faulty->put_failures_remaining = 2;
    store = faulty;
    options.max_retries = 6;
    options.retry_backoff_s = 1e-4;
  }
  runtime::ExecutorSpec exec_spec;
  exec_spec.kind = runtime::ExecutorKind::kThreads;
  exec_spec.options = options;
  exec_spec.store = store;
  auto executor_or = runtime::MakeExecutor(exec_spec);
  if (!executor_or.ok()) {
    out.status = executor_or.status();
    return out;
  }
  runtime::Executor& executor = **executor_or;
  auto result = executor.Run(built->graph);
  if (!result.ok()) {
    out.status = result.status();
    return out;
  }
  out.report = std::move(result).value();
  InvariantContext context;
  context.num_threads = config.threads;
  context.faulted = config.faulty_storage;
  out.status = VerifyReport(built->graph, out.report, context);
  if (!out.status.ok()) return out;
  if (faulty != nullptr) {
    // Disarm the injector: result fetching is the harness reading the
    // run's outputs, not part of the run under test.
    faulty->get_failures_remaining = 0;
    faulty->put_failures_remaining = 0;
  }
  out.values.reserve(built->compare.size());
  for (DataId d : built->compare) {
    auto value = executor.Fetch(built->graph, d);
    if (!value.ok()) {
      out.status = value.status().WithContext(
          StrFormat("fetching datum %lld", static_cast<long long>(d)));
      return out;
    }
    out.values.push_back(std::move(value).value());
  }
  return out;
}

std::string DescribeDiff(DataId d, const Matrix& got,
                         const Matrix& want) {
  return StrFormat(
      "datum %lld differs: max|delta|=%.3g over shapes %lldx%lld vs "
      "%lldx%lld",
      static_cast<long long>(d), got.MaxAbsDiff(want),
      static_cast<long long>(got.rows()),
      static_cast<long long>(got.cols()),
      static_cast<long long>(want.rows()),
      static_cast<long long>(want.cols()));
}

Status ValidateExports(const RunReport& report) {
  std::ostringstream trace;
  runtime::StreamChromeTrace(report, trace);
  TB_RETURN_IF_ERROR(
      obs::ValidateJson(trace.str()).WithContext("chrome trace"));
  std::ostringstream metrics;
  runtime::StreamMetricsJson(report, nullptr, metrics);
  TB_RETURN_IF_ERROR(
      obs::ValidateJson(metrics.str()).WithContext("metrics json"));
  return Status::OK();
}

}  // namespace

std::string DifferentialResult::Summary() const {
  std::string out;
  for (const Divergence& d : divergences) {
    out += "  [" + d.config + "] " + d.detail + "\n";
  }
  return out;
}

DifferentialResult RunDifferential(const WorkloadSpec& spec,
                                   const DifferentialOptions& options) {
  DifferentialResult result;
  auto diverge = [&result](const std::string& config, std::string detail) {
    result.divergences.push_back({config, std::move(detail)});
  };

  // ----------------------------------------------------------------
  // Real (thread-pool) matrix, compared value-for-value against the
  // sequential/memory/naive baseline.
  // ----------------------------------------------------------------
  std::vector<RealConfig> configs;
  configs.push_back({"t1-mem-naive", 1, false, KernelVariant::kNaive});
  configs.push_back({StrFormat("t%d-mem-naive", options.threads),
                     options.threads, false, KernelVariant::kNaive});
  configs.push_back({"t1-store-naive", 1, true, KernelVariant::kNaive});
  configs.push_back({StrFormat("t%d-store-naive", options.threads),
                     options.threads, true, KernelVariant::kNaive});
  configs.push_back({"t1-mem-blocked", 1, false, KernelVariant::kBlocked});
  configs.push_back({StrFormat("t%d-store-blocked", options.threads),
                     options.threads, true, KernelVariant::kBlocked});
  // Versioned block-cache legs: every cached read must be
  // bit-identical to a fresh deserialize, whatever the hit pattern —
  // INOUT rewrites included (the generator's FMA accumulators).
  configs.push_back({"t1-store-naive-cache", 1, true, KernelVariant::kNaive,
                     false, true});
  configs.push_back({StrFormat("t%d-store-naive-cache", options.threads),
                     options.threads, true, KernelVariant::kNaive, false,
                     true});
  {
    // Cost-model hedging leg: duplicates of every hedgeable task may
    // race the primary (hedge_min_s = 0), and only one may publish.
    RealConfig hedge;
    hedge.name = StrFormat("t%d-store-cost-hedge", options.threads);
    hedge.threads = options.threads;
    hedge.use_storage = true;
    hedge.cost_hedge = true;
    configs.push_back(hedge);
  }
  if (options.include_faults) {
    configs.push_back({StrFormat("t%d-faulty-store-naive",
                                 options.threads),
                       options.threads, true, KernelVariant::kNaive,
                       true});
    // Faults + cache: retried attempts re-read partially-written
    // INOUT state; cached reads must track it exactly. (The cache
    // absorbs some Gets, so the injector fires at different logical
    // reads than in the uncached leg — values must not care.)
    configs.push_back({StrFormat("t%d-faulty-store-cache",
                                 options.threads),
                       options.threads, true, KernelVariant::kNaive, true,
                       true});
  }
  if (options.include_multiproc && runtime::MultiProcExecutor::Supported()) {
    // The scale-out plane: same naive kernels, blocks moving through
    // the shm arena instead of a BlockStorage — still bit-exact.
    RealConfig p2{"p2-arena-naive"};
    p2.procs = 2;
    configs.push_back(p2);
    RealConfig p4{"p4-arena-naive"};
    p4.procs = 4;
    configs.push_back(p4);
    // Tag-keyed worker caches over the same arena protocol.
    RealConfig p2c{"p2-arena-naive-cache"};
    p2c.procs = 2;
    p2c.cache = true;
    configs.push_back(p2c);
  }

  RealRun baseline = RunReal(spec, configs[0]);
  ++result.real_configs;
  if (!baseline.status.ok()) {
    diverge(configs[0].name, baseline.status.ToString());
    return result;  // nothing to compare against
  }
  if (Status s = ValidateExports(baseline.report); !s.ok()) {
    diverge(configs[0].name, s.ToString());
  }

  // Oracle: families with a closed form must match it (tolerance —
  // the distributed summation order differs from the dense product).
  {
    auto built = BuildWorkload(spec);
    if (built.ok()) {
      for (size_t i = 0; i < built->oracle.size(); ++i) {
        const OracleEntry& entry = built->oracle[i];
        // compare[] holds every datum id in order, so index directly.
        const Matrix& got =
            baseline.values[static_cast<size_t>(entry.id)];
        const double tol =
            options.tolerance * (MaxAbs(entry.expected) + 1.0);
        if (!got.ApproxEquals(entry.expected, tol)) {
          diverge("oracle", DescribeDiff(entry.id, got, entry.expected));
        }
      }
    }
  }

  for (size_t c = 1; c < configs.size(); ++c) {
    const RealConfig& config = configs[c];
    RealRun run = RunReal(spec, config);
    ++result.real_configs;
    if (!run.status.ok()) {
      diverge(config.name, run.status.ToString());
      continue;
    }
    if (run.values.size() != baseline.values.size()) {
      diverge(config.name, "result count mismatch");
      continue;
    }
    const bool exact = config.kernels == KernelVariant::kNaive;
    for (size_t i = 0; i < run.values.size(); ++i) {
      const Matrix& got = run.values[i];
      const Matrix& want = baseline.values[i];
      bool same;
      if (exact) {
        // Same kernels + deterministic per-task inputs: thread count,
        // storage round-trips and retries must not move a single bit.
        same = got == want;
      } else {
        const double tol = options.tolerance * (MaxAbs(want) + 1.0);
        same = got.ApproxEquals(want, tol);
      }
      if (!same) {
        diverge(config.name,
                DescribeDiff(static_cast<DataId>(i), got, want));
        break;  // one datum per config is enough to localize
      }
    }
  }

  if (!options.include_sim) return result;

  // ----------------------------------------------------------------
  // Simulated matrix on the paper's cluster shape. One build serves
  // every leg — the simulator never mutates the graph.
  // ----------------------------------------------------------------
  auto built = BuildWorkload(spec);
  if (!built.ok()) {
    diverge("sim-build", built.status().ToString());
    return result;
  }
  const hw::ClusterSpec cluster = hw::MinotauroCluster();

  struct SimConfig {
    std::string name;
    SchedulingPolicy policy;
    hw::StorageArchitecture storage;
    bool hybrid = false;
  };
  std::vector<SimConfig> sim_configs = {
      {"sim-fifo-shared", SchedulingPolicy::kTaskGenerationOrder,
       hw::StorageArchitecture::kSharedDisk},
      {"sim-fifo-local", SchedulingPolicy::kTaskGenerationOrder,
       hw::StorageArchitecture::kLocalDisk},
      {"sim-locality-shared", SchedulingPolicy::kDataLocality,
       hw::StorageArchitecture::kSharedDisk},
      {"sim-locality-local", SchedulingPolicy::kDataLocality,
       hw::StorageArchitecture::kLocalDisk},
      {"sim-hybrid-shared", SchedulingPolicy::kTaskGenerationOrder,
       hw::StorageArchitecture::kSharedDisk, /*hybrid=*/true},
      // Cost-model legs: with the processor pinned (non-hybrid) the
      // score-ordered ready queue may only reorder tasks, so the
      // metamorphic stage check below applies to them unchanged.
      {"sim-cost-shared", SchedulingPolicy::kCostModel,
       hw::StorageArchitecture::kSharedDisk},
      {"sim-cost-local", SchedulingPolicy::kCostModel,
       hw::StorageArchitecture::kLocalDisk},
      // Hybrid cost leg: CPU->GPU escalation is live here.
      {"sim-cost-hybrid", SchedulingPolicy::kCostModel,
       hw::StorageArchitecture::kSharedDisk, /*hybrid=*/true},
  };

  const RunReport* reference = nullptr;
  RunReport first_report;
  for (const SimConfig& config : sim_configs) {
    RunOptions sim_options;
    sim_options.policy = config.policy;
    sim_options.storage = config.storage;
    sim_options.hybrid = config.hybrid;
    sim_options.check_invariants = true;
    runtime::ExecutorSpec exec_spec;
    exec_spec.kind = runtime::ExecutorKind::kSim;
    exec_spec.options = sim_options;
    exec_spec.cluster = cluster;
    auto executor_or = runtime::MakeExecutor(exec_spec);
    if (!executor_or.ok()) {
      diverge(config.name, executor_or.status().ToString());
      continue;
    }
    runtime::Executor& executor = **executor_or;
    auto run1 = executor.Run(built->graph);
    ++result.sim_configs;
    if (!run1.ok()) {
      diverge(config.name, run1.status().ToString());
      continue;
    }
    auto run2 = executor.Run(built->graph);
    if (!run2.ok()) {
      diverge(config.name, "re-run failed: " + run2.status().ToString());
      continue;
    }
    // Determinism: two replays of the same config are byte-identical.
    const uint64_t d1 = DigestReport(*run1);
    const uint64_t d2 = DigestReport(*run2);
    if (d1 != d2) {
      diverge(config.name,
              StrFormat("non-deterministic replay: digest %016llx != "
                        "%016llx",
                        static_cast<unsigned long long>(d1),
                        static_cast<unsigned long long>(d2)));
      continue;
    }
    InvariantContext context;
    context.cluster = &cluster;
    context.simulated = true;
    if (Status s = VerifyReport(built->graph, *run1, context); !s.ok()) {
      diverge(config.name, s.ToString());
      continue;
    }
    // Metamorphic: scheduling policy, storage architecture and hybrid
    // spill-over may move tasks around, but a task's modeled compute
    // stages depend only on its cost and the processor that ran it —
    // for the non-hybrid legs the processor is pinned, so the stages
    // must be bit-equal across legs.
    if (!config.hybrid) {
      if (reference == nullptr) {
        first_report = std::move(run1).value();
        reference = &first_report;
        if (Status s = ValidateExports(first_report); !s.ok()) {
          diverge(config.name, s.ToString());
        }
      } else {
        for (size_t i = 0; i < reference->records.size(); ++i) {
          const auto& a = reference->records[i];
          const auto& b = run1->records[i];
          if (a.stages.serial_fraction != b.stages.serial_fraction ||
              a.stages.parallel_fraction != b.stages.parallel_fraction ||
              a.stages.cpu_gpu_comm != b.stages.cpu_gpu_comm) {
            diverge(config.name,
                    StrFormat("task %lld compute stages changed under "
                              "scheduling (metamorphic violation)",
                              static_cast<long long>(a.task)));
            break;
          }
        }
      }
    }
  }

  // ----------------------------------------------------------------
  // Hedging is a fault-path feature: with no fault plan, toggling
  // disable_hedging must not change the cost-model report at all.
  // ----------------------------------------------------------------
  {
    uint64_t digests[2] = {0, 0};
    bool ran = true;
    for (int i = 0; i < 2 && ran; ++i) {
      RunOptions sim_options;
      sim_options.policy = SchedulingPolicy::kCostModel;
      sim_options.storage = hw::StorageArchitecture::kSharedDisk;
      sim_options.sched.disable_hedging = i == 1;
      sim_options.check_invariants = true;
      runtime::ExecutorSpec exec_spec;
      exec_spec.kind = runtime::ExecutorKind::kSim;
      exec_spec.options = sim_options;
      exec_spec.cluster = cluster;
      auto executor_or = runtime::MakeExecutor(exec_spec);
      if (!executor_or.ok()) {
        diverge("sim-cost-hedging-toggle", executor_or.status().ToString());
        ran = false;
        break;
      }
      auto run = (**executor_or).Run(built->graph);
      ++result.sim_configs;
      if (!run.ok()) {
        diverge("sim-cost-hedging-toggle", run.status().ToString());
        ran = false;
        break;
      }
      digests[i] = DigestReport(*run);
    }
    if (ran && digests[0] != digests[1]) {
      diverge("sim-cost-hedging-toggle",
              StrFormat("fault-free digest %016llx (hedging on) != "
                        "%016llx (hedging off)",
                        static_cast<unsigned long long>(digests[0]),
                        static_cast<unsigned long long>(digests[1])));
    }
  }

  // ----------------------------------------------------------------
  // Fault-plan legs: the run must complete, verify, replay
  // deterministically and still export valid JSON.
  // ----------------------------------------------------------------
  if (options.include_faults && reference != nullptr) {
    runtime::FaultPlan plan;
    plan.events.push_back({runtime::FaultKind::kNodeCrash,
                           0.35 * reference->makespan, 1, 1.0});
    plan.events.push_back({runtime::FaultKind::kSlowNode,
                           0.1 * reference->makespan, 2, 1.7});
    plan.events.push_back({runtime::FaultKind::kGpuLoss,
                           0.2 * reference->makespan, 3, 1.0});
    plan.storage_fault_rate = 0.01;
    plan.seed = spec.seed;
    struct FaultLeg {
      const char* name;
      SchedulingPolicy policy;
      hw::StorageArchitecture storage;
    };
    // The cost-model legs run the full straggler machinery: the slow
    // node in the plan makes hedges fire, and their cancellations and
    // detached twins must replay deterministically like any retry.
    const FaultLeg fault_legs[] = {
        {"sim-fault-shared", SchedulingPolicy::kDataLocality,
         hw::StorageArchitecture::kSharedDisk},
        {"sim-fault-local", SchedulingPolicy::kDataLocality,
         hw::StorageArchitecture::kLocalDisk},
        {"sim-fault-cost-shared", SchedulingPolicy::kCostModel,
         hw::StorageArchitecture::kSharedDisk},
        {"sim-fault-cost-local", SchedulingPolicy::kCostModel,
         hw::StorageArchitecture::kLocalDisk},
    };
    for (const FaultLeg& leg : fault_legs) {
      const std::string name = leg.name;
      RunOptions sim_options;
      sim_options.policy = leg.policy;
      sim_options.storage = leg.storage;
      sim_options.faults = plan;
      sim_options.max_retries = 8;
      sim_options.retry_backoff_s = 0.01;
      sim_options.check_invariants = true;
      runtime::ExecutorSpec exec_spec;
      exec_spec.kind = runtime::ExecutorKind::kSim;
      exec_spec.options = sim_options;
      exec_spec.cluster = cluster;
      auto executor_or = runtime::MakeExecutor(exec_spec);
      if (!executor_or.ok()) {
        diverge(name, executor_or.status().ToString());
        continue;
      }
      runtime::Executor& executor = **executor_or;
      auto run1 = executor.Run(built->graph);
      ++result.sim_configs;
      if (!run1.ok()) {
        diverge(name, run1.status().ToString());
        continue;
      }
      auto run2 = executor.Run(built->graph);
      if (!run2.ok() ||
          Fnv1a(kFnvOffsetBasis,
                CanonicalReport(*run1) + CanonicalAttempts(*run1)) !=
              Fnv1a(kFnvOffsetBasis,
                    CanonicalReport(*run2) + CanonicalAttempts(*run2))) {
        diverge(name, "fault replay not deterministic");
        continue;
      }
      InvariantContext context;
      context.cluster = &cluster;
      context.simulated = true;
      context.faulted = true;
      if (Status s = VerifyReport(built->graph, *run1, context);
          !s.ok()) {
        diverge(name, s.ToString());
        continue;
      }
      if (Status s = ValidateExports(*run1); !s.ok()) {
        diverge(name, s.ToString());
      }
    }
  }

  return result;
}

}  // namespace taskbench::check
