#ifndef TASKBENCH_CHECK_INVARIANTS_H_
#define TASKBENCH_CHECK_INVARIANTS_H_

#include "common/status.h"
#include "hw/cluster.h"
#include "runtime/metrics.h"
#include "runtime/task_graph.h"

namespace taskbench::check {

/// What VerifyReport may assume about the run that produced a report.
struct InvariantContext {
  /// Simulated runs: the cluster the report was replayed on, enabling
  /// the per-node busy-time <= makespan x slot-capacity check. Null
  /// disables it.
  const hw::ClusterSpec* cluster = nullptr;
  /// Thread-pool runs: worker count, enabling the total-busy-time
  /// bound. 0 disables it.
  int num_threads = 0;
  /// The report came from the simulated executor (scheduler phases
  /// and event counters are meaningful).
  bool simulated = false;
  /// A fault plan / faulty storage was active: relaxes the checks
  /// recovery legitimately breaks (dependency start ordering, exactly
  /// one attempt per task, zero fault counters).
  bool faulted = false;
};

/// Post-hoc invariant verification of a *successful* run's report
/// against the graph it executed. This is the reusable half of the
/// checking subsystem — the executors run the same laws online behind
/// RunOptions::check_invariants; the fuzz driver and the tests call
/// this on every report they see, so a bug has to fool both an
/// inline check and an independent re-derivation to slip through.
///
/// Verified (fault-free; [f] = also under faults):
///   [f] exactly one record per task, matching task/type/level,
///       0 <= start <= end <= makespan, makespan == max end
///   -   every task starts at/after each dependency's end
///   [f] scheduler phase breakdown sums to the decision overhead and
///       is zero on non-simulated reports
///   [f] per-node (cluster) / total (num_threads) busy-time bounds
///   [f] attempt log: per-task attempt numbers strictly increase, and
///       each logged task's final attempt completed
///   -   fault counters all zero, attempt log empty (simulated)
///
/// Returns OK or a FailedPrecondition whose message starts with
/// "invariant violation".
Status VerifyReport(const runtime::TaskGraph& graph,
                    const runtime::RunReport& report,
                    const InvariantContext& context);

}  // namespace taskbench::check

#endif  // TASKBENCH_CHECK_INVARIANTS_H_
