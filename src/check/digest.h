#ifndef TASKBENCH_CHECK_DIGEST_H_
#define TASKBENCH_CHECK_DIGEST_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "runtime/metrics.h"

namespace taskbench::check {

/// FNV-1a offset basis; every digest chain starts here.
inline constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ull;

/// Folds `s` into a running FNV-1a hash.
uint64_t Fnv1a(uint64_t hash, const std::string& s);

/// Folds `n` raw bytes into a running FNV-1a hash — for value digests
/// over matrix payloads, where wall-clock-free determinism checks
/// need a bit-exact fingerprint of fetched results.
uint64_t FoldBytes(uint64_t hash, const void* data, size_t n);

/// Canonical text of the report header: makespan, scheduler overhead
/// and executed event count, printed with full double precision so
/// two builds agree iff their timing decisions were bit-identical.
std::string CanonicalHeader(const runtime::RunReport& report);

/// Canonical text of the per-task records (one line per record, in
/// report order).
std::string CanonicalRecords(const runtime::RunReport& report);

/// Canonical text of the attempt log and fault counters. Empty on
/// fault-free runs, so fault-free digests are unchanged by the fault
/// subsystem.
std::string CanonicalAttempts(const runtime::RunReport& report);

/// Full canonical report: header followed by records. This is the
/// exact string `tools/report_digest` has always hashed — the
/// cross-build TOTAL digest depends on it staying byte-stable.
std::string CanonicalReport(const runtime::RunReport& report);

/// 64-bit FNV-1a digest of CanonicalReport(report).
uint64_t DigestReport(const runtime::RunReport& report);

}  // namespace taskbench::check

#endif  // TASKBENCH_CHECK_DIGEST_H_
