#include "check/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "common/strings.h"

namespace taskbench::check {

namespace {

using runtime::AttemptOutcome;
using runtime::RunReport;
using runtime::TaskAttempt;
using runtime::TaskGraph;
using runtime::TaskId;
using runtime::TaskRecord;

Status Violation(std::string msg) {
  return Status::FailedPrecondition("invariant violation: " +
                                    std::move(msg));
}

Status CheckRecords(const TaskGraph& graph, const RunReport& report,
                    const InvariantContext& context) {
  if (static_cast<int64_t>(report.records.size()) != graph.num_tasks()) {
    return Violation(StrFormat(
        "%llu records for %lld tasks",
        static_cast<unsigned long long>(report.records.size()),
        static_cast<long long>(graph.num_tasks())));
  }
  const double tol = 1e-9 * report.makespan + 1e-12;
  double max_end = 0;
  for (size_t i = 0; i < report.records.size(); ++i) {
    const TaskRecord& rec = report.records[i];
    if (rec.task != static_cast<TaskId>(i)) {
      return Violation(StrFormat("record %llu holds task %lld",
                                 static_cast<unsigned long long>(i),
                                 static_cast<long long>(rec.task)));
    }
    const runtime::Task& task = graph.task(rec.task);
    if (rec.type != task.spec.type || rec.level != task.level) {
      return Violation(StrFormat(
          "record %lld type/level (%s/%d) disagrees with graph (%s/%d)",
          static_cast<long long>(rec.task), rec.type.c_str(), rec.level,
          task.spec.type.c_str(), task.level));
    }
    if (!(rec.start >= 0) || rec.end < rec.start ||
        rec.end > report.makespan + tol) {
      return Violation(StrFormat(
          "record %lld interval [%.17g, %.17g] outside [0, makespan "
          "%.17g]",
          static_cast<long long>(rec.task), rec.start, rec.end,
          report.makespan));
    }
    max_end = std::max(max_end, rec.end);
  }
  if (std::abs(max_end - report.makespan) > tol) {
    return Violation(StrFormat("makespan %.17g != last task end %.17g",
                               report.makespan, max_end));
  }
  if (context.faulted) return Status::OK();
  // Dependency ordering: a task begins at/after every dependency's
  // end. Under faults a recomputed producer may finish after a
  // consumer that already ran off its earlier output, so fault runs
  // skip this.
  for (const TaskRecord& rec : report.records) {
    for (TaskId dep : graph.task(rec.task).deps) {
      const TaskRecord& d = report.records[static_cast<size_t>(dep)];
      if (rec.start < d.end - tol) {
        return Violation(StrFormat(
            "task %lld started at %.17g before dependency %lld ended "
            "at %.17g",
            static_cast<long long>(rec.task), rec.start,
            static_cast<long long>(dep), d.end));
      }
    }
  }
  return Status::OK();
}

Status CheckScheduler(const RunReport& report,
                      const InvariantContext& context) {
  const double total = report.sched_phases.total();
  if (!context.simulated) {
    if (report.sched_phases.any() || report.scheduler_overhead != 0 ||
        report.sim_events != 0) {
      return Violation(
          "non-simulated report carries scheduler phases or simulator "
          "events");
    }
    return Status::OK();
  }
  const double tol =
      1e-7 * (report.scheduler_overhead + 1e-12) + 1e-15;
  if (std::abs(total - report.scheduler_overhead) > tol) {
    return Violation(StrFormat(
        "DecisionPhases sum %.17g != scheduler overhead %.17g", total,
        report.scheduler_overhead));
  }
  if (report.sim_events == 0 && !report.records.empty()) {
    return Violation("simulated run executed zero events");
  }
  return Status::OK();
}

Status CheckBusyTime(const RunReport& report,
                     const InvariantContext& context) {
  if (context.cluster != nullptr) {
    const hw::ClusterSpec& cluster = *context.cluster;
    std::vector<double> cpu_busy(static_cast<size_t>(cluster.num_nodes), 0);
    std::vector<double> gpu_busy(static_cast<size_t>(cluster.num_nodes), 0);
    for (const TaskRecord& rec : report.records) {
      if (rec.node < 0 || rec.node >= cluster.num_nodes) {
        return Violation(StrFormat("record %lld ran on unknown node %d",
                                   static_cast<long long>(rec.task),
                                   rec.node));
      }
      auto& busy =
          rec.processor == Processor::kCpu ? cpu_busy : gpu_busy;
      busy[static_cast<size_t>(rec.node)] += rec.duration();
    }
    const double tol = 1e-9 * report.makespan + 1e-12;
    for (int n = 0; n < cluster.num_nodes; ++n) {
      if (cpu_busy[static_cast<size_t>(n)] >
              report.makespan * cluster.cores_per_node +
                  tol * cluster.cores_per_node ||
          gpu_busy[static_cast<size_t>(n)] >
              report.makespan * cluster.gpus_per_node +
                  tol * std::max(1, cluster.gpus_per_node)) {
        return Violation(StrFormat(
            "node %d busy (cpu=%.17g gpu=%.17g) exceeds makespan %.17g "
            "x capacity (%d cores, %d gpus)",
            n, cpu_busy[static_cast<size_t>(n)],
            gpu_busy[static_cast<size_t>(n)], report.makespan,
            cluster.cores_per_node, cluster.gpus_per_node));
      }
    }
  }
  if (context.num_threads > 0) {
    double busy = 0;
    for (const TaskRecord& rec : report.records) busy += rec.duration();
    const double cap = report.makespan * context.num_threads;
    if (busy > cap + 1e-9 * cap + 1e-12) {
      return Violation(StrFormat(
          "total busy time %.17g exceeds %d workers x makespan %.17g",
          busy, context.num_threads, report.makespan));
    }
  }
  return Status::OK();
}

Status CheckAttempts(const RunReport& report,
                     const InvariantContext& context) {
  if (!context.faulted && context.simulated) {
    if (report.faults.any() || !report.attempts.empty()) {
      return Violation(
          "fault-free simulated run reports fault counters or "
          "attempts");
    }
    return Status::OK();
  }
  // Attempt numbers must strictly increase per task in log order, and
  // for a successful run the final attempt of every logged task
  // completed.
  std::map<TaskId, const TaskAttempt*> last;
  for (const TaskAttempt& a : report.attempts) {
    if (a.end < a.start) {
      return Violation(StrFormat(
          "attempt %d of task %lld ends (%.17g) before it starts "
          "(%.17g)",
          a.attempt, static_cast<long long>(a.task), a.end, a.start));
    }
    auto [it, inserted] = last.emplace(a.task, &a);
    if (!inserted) {
      if (a.attempt <= it->second->attempt) {
        return Violation(StrFormat(
            "task %lld attempt numbers not monotonic (%d after %d)",
            static_cast<long long>(a.task), a.attempt,
            it->second->attempt));
      }
      it->second = &a;
    }
  }
  for (const auto& [task, attempt] : last) {
    if (attempt->outcome != AttemptOutcome::kCompleted &&
        attempt->outcome != AttemptOutcome::kFailed &&
        attempt->outcome != AttemptOutcome::kHedgeCancelled) {
      // kFailed appears in thread-pool logs for retried-then-
      // successful attempts, and kHedgeCancelled is the losing twin
      // of a hedge pair (logged after the winner's completion when
      // the twin held the higher attempt number); a successful run's
      // final logged sim attempt must otherwise be kCompleted.
      if (context.simulated) {
        return Violation(StrFormat(
            "task %lld final attempt %d ended %s, not completed",
            static_cast<long long>(task), attempt->attempt,
            runtime::ToString(attempt->outcome).c_str()));
      }
    }
  }
  // Cancelled hedge twins are not retries: the primary never failed.
  const int64_t hedge_cancelled = static_cast<int64_t>(
      std::count_if(report.attempts.begin(), report.attempts.end(),
                    [](const TaskAttempt& a) {
                      return a.outcome == AttemptOutcome::kHedgeCancelled;
                    }));
  const int64_t non_completed =
      static_cast<int64_t>(std::count_if(
          report.attempts.begin(), report.attempts.end(),
          [](const TaskAttempt& a) {
            return a.outcome != AttemptOutcome::kCompleted;
          })) -
      hedge_cancelled;
  if (context.simulated && report.faults.retries != non_completed) {
    return Violation(StrFormat(
        "retry counter %lld != %lld non-completed attempts",
        static_cast<long long>(report.faults.retries),
        static_cast<long long>(non_completed)));
  }
  // Every cancelled twin was launched as a hedge; a twin may also
  // survive (its primary died), so cancellations never exceed hedges.
  if (context.simulated && hedge_cancelled > report.faults.hedges) {
    return Violation(StrFormat(
        "%lld hedge cancellations exceed %lld hedges launched",
        static_cast<long long>(hedge_cancelled),
        static_cast<long long>(report.faults.hedges)));
  }
  return Status::OK();
}

}  // namespace

Status VerifyReport(const TaskGraph& graph, const RunReport& report,
                    const InvariantContext& context) {
  if (graph.num_tasks() == 0) return Status::OK();
  TB_RETURN_IF_ERROR(CheckRecords(graph, report, context));
  TB_RETURN_IF_ERROR(CheckScheduler(report, context));
  TB_RETURN_IF_ERROR(CheckBusyTime(report, context));
  TB_RETURN_IF_ERROR(CheckAttempts(report, context));
  return Status::OK();
}

}  // namespace taskbench::check
