#include "check/digest.h"

#include "common/strings.h"

namespace taskbench::check {

uint64_t Fnv1a(uint64_t hash, const std::string& s) {
  return FoldBytes(hash, s.data(), s.size());
}

uint64_t FoldBytes(uint64_t hash, const void* data, size_t n) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string CanonicalHeader(const runtime::RunReport& report) {
  return StrFormat("makespan=%.17g overhead=%.17g events=%llu\n",
                   report.makespan, report.scheduler_overhead,
                   static_cast<unsigned long long>(report.sim_events));
}

std::string CanonicalRecords(const runtime::RunReport& report) {
  std::string out;
  for (const runtime::TaskRecord& r : report.records) {
    out += StrFormat(
        "t=%lld type=%s level=%d proc=%s node=%d start=%.17g end=%.17g "
        "de=%.17g sf=%.17g pf=%.17g comm=%.17g se=%.17g\n",
        static_cast<long long>(r.task), r.type.c_str(), r.level,
        ToString(r.processor).c_str(), r.node, r.start, r.end,
        r.stages.deserialize, r.stages.serial_fraction,
        r.stages.parallel_fraction, r.stages.cpu_gpu_comm,
        r.stages.serialize);
  }
  return out;
}

std::string CanonicalAttempts(const runtime::RunReport& report) {
  std::string out;
  if (report.faults.any()) {
    out += StrFormat(
        "faults injected=%lld storage=%lld retries=%lld recomputed=%lld "
        "lost_blocks=%lld dead_nodes=%lld\n",
        static_cast<long long>(report.faults.faults_injected),
        static_cast<long long>(report.faults.storage_faults),
        static_cast<long long>(report.faults.retries),
        static_cast<long long>(report.faults.recomputed_tasks),
        static_cast<long long>(report.faults.lost_blocks),
        static_cast<long long>(report.faults.dead_nodes));
  }
  for (const runtime::TaskAttempt& a : report.attempts) {
    out += StrFormat(
        "a=%lld attempt=%d node=%d proc=%s start=%.17g end=%.17g "
        "outcome=%s\n",
        static_cast<long long>(a.task), a.attempt, a.node,
        ToString(a.processor).c_str(), a.start, a.end,
        runtime::ToString(a.outcome).c_str());
  }
  return out;
}

std::string CanonicalReport(const runtime::RunReport& report) {
  return CanonicalHeader(report) + CanonicalRecords(report);
}

uint64_t DigestReport(const runtime::RunReport& report) {
  return Fnv1a(kFnvOffsetBasis, CanonicalReport(report));
}

}  // namespace taskbench::check
