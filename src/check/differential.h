#ifndef TASKBENCH_CHECK_DIFFERENTIAL_H_
#define TASKBENCH_CHECK_DIFFERENTIAL_H_

#include <string>
#include <vector>

#include "check/workload.h"

namespace taskbench::check {

/// Knobs of one differential run. The defaults are what the fuzz
/// driver and the fuzz-smoke test use.
struct DifferentialOptions {
  /// Also run the fault-injected legs (a FaultPlan on the simulated
  /// executor, a FaultyStorage backend under the thread pool).
  bool include_faults = true;
  /// Also run the simulated-executor matrix. Off restricts the run to
  /// the real (thread-pool) configurations.
  bool include_sim = true;
  /// Also run the multi-process (shared-memory arena) legs: 2 and 4
  /// forked workers, required to match the single-thread baseline
  /// bit-exactly like every other naive-kernel leg. Skipped silently
  /// on platforms where MultiProcExecutor is unsupported.
  bool include_multiproc = true;
  /// Worker count of the "parallel" thread-pool configurations.
  int threads = 4;
  /// Relative tolerance for comparisons whose summation order differs
  /// (blocked matmul kernels, the distributed-vs-dense oracle).
  /// Configurations sharing kernel variants must agree bit-exactly.
  double tolerance = 1e-7;
};

/// One disagreement between configurations (or a config that failed
/// outright). `config` identifies the leg, `detail` says what
/// diverged and by how much.
struct Divergence {
  std::string config;
  std::string detail;
};

/// Outcome of executing one workload spec across the full matrix.
struct DifferentialResult {
  int real_configs = 0;  ///< thread-pool legs executed
  int sim_configs = 0;   ///< simulated legs executed
  std::vector<Divergence> divergences;

  bool ok() const { return divergences.empty(); }
  /// Multi-line human summary of the divergences (empty when ok).
  std::string Summary() const;
};

/// Builds `spec` fresh per configuration (TaskGraph is move-only and
/// the thread pool mutates values) and executes it across the matrix:
///
///   real:  {1, N} threads x {memory, storage} x {naive, blocked}
///          kernels, versioned block-cache legs (storage and
///          faulty-storage twins plus a 2-proc arena leg, all with
///          RunOptions::block_cache on), a cost-model hedging leg
///          (speculative duplicates racing primaries, hedge_min_s=0),
///          and a FaultyStorage-with-retries leg — every result datum
///          compared against the 1-thread/memory/naive baseline
///          (bit-exact for naive legs, cached and hedged ones
///          included; tolerance for blocked) and against the
///          closed-form oracle where the family has one;
///   sim:   {fifo, locality, cost} x {shared, local} plus hybrid legs
///          (fifo and cost, the latter with GPU escalation live) on
///          the paper's Minotauro shape — each run twice and required
///          to produce digest-identical reports, with per-task
///          compute stages invariant across the non-hybrid legs
///          (metamorphic: scheduling must not change modeled task
///          work); a hedging-toggle check (fault-free cost-model
///          reports must be digest-identical with hedging enabled and
///          disabled); and fault-plan legs (node crash + slow node +
///          transient storage faults, under both the locality and
///          cost-model policies — the latter exercising speculative
///          hedging) that must still complete;
///
/// every report passing check::VerifyReport and every exported
/// trace/metrics document passing obs::ValidateJson.
DifferentialResult RunDifferential(const WorkloadSpec& spec,
                                   const DifferentialOptions& options);

}  // namespace taskbench::check

#endif  // TASKBENCH_CHECK_DIFFERENTIAL_H_
