#include "check/workload.h"

#include <cstddef>
#include <utility>

#include "algos/kmeans.h"
#include "algos/matmul.h"
#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"
#include "data/grid.h"
#include "data/kernels.h"
#include "perf/task_cost.h"
#include "wf/build.h"
#include "wf/generator.h"
#include "wf/import.h"
#include "wf/instance.h"

namespace taskbench::check {

namespace {

using data::Matrix;
using runtime::DataId;
using runtime::Dir;
using runtime::KernelFn;
using runtime::Param;
using runtime::TaskGraph;
using runtime::TaskSpec;

/// Cost descriptor scaled from the datum size, mirroring the shapes
/// the digest battery uses (a mixed roofline with GPU transfer legs
/// when accelerated).
perf::TaskCost CostFor(uint64_t bytes, bool gpu) {
  perf::TaskCost cost;
  cost.parallel.flops = static_cast<double>(bytes) * 4;
  cost.parallel.bytes = static_cast<double>(bytes);
  cost.serial.flops = static_cast<double>(bytes) / 8;
  cost.serial.bytes = static_cast<double>(bytes) / 8;
  cost.input_bytes = bytes;
  cost.output_bytes = bytes;
  if (gpu) {
    cost.h2d_bytes = bytes;
    cost.d2h_bytes = bytes;
    cost.num_transfers = 2;
    cost.gpu_working_set_bytes = 2 * bytes;
  }
  return cost;
}

/// dim x dim matrix of values in [-1/dim, 1/dim): small enough that
/// chains of Multiply stay O(1) in magnitude, so tolerance-based
/// comparison across kernel variants never fights overflow.
Matrix RandomBlock(Rng& rng, int64_t dim) {
  Matrix m(dim, dim);
  const double scale = 1.0 / static_cast<double>(dim);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.Uniform(-scale, scale);
  }
  return m;
}

/// Elementwise ops the synthetic kernels compose. Every op maps two
/// same-shape square inputs to one output through the dispatching
/// data:: entry points, so the blocked-vs-naive kernel seam is
/// exercised by every synthetic family.
enum class Op { kAdd = 0, kMul = 1, kAddT = 2 };

Op DrawOp(Rng& rng) { return static_cast<Op>(rng.NextBounded(3)); }

Status ApplyOp(Op op, const Matrix& a, const Matrix& b, Matrix* out) {
  switch (op) {
    case Op::kAdd: {
      TB_ASSIGN_OR_RETURN(*out, data::Add(a, b));
      return Status::OK();
    }
    case Op::kMul: {
      TB_ASSIGN_OR_RETURN(*out, data::Multiply(a, b));
      return Status::OK();
    }
    case Op::kAddT: {
      TB_ASSIGN_OR_RETURN(*out, data::Add(a, data::Transpose(b)));
      return Status::OK();
    }
  }
  return Status::Internal("unreachable op");
}

/// Binary kernel out = op(in0, in1). For INOUT accumulators the
/// second input aliases the output slot, which ApplyOp tolerates (it
/// materializes a fresh matrix before assigning).
KernelFn BinaryKernel(Op op) {
  return [op](const std::vector<const Matrix*>& inputs,
              const std::vector<Matrix*>& outputs) -> Status {
    return ApplyOp(op, *inputs[0], *inputs[1], outputs[0]);
  };
}

/// Reduce kernel: out = in0 (+) in1 (+) ... folded left in param
/// order, so the summation order is independent of execution order.
KernelFn ReduceKernel(std::vector<Op> ops) {
  return [ops = std::move(ops)](const std::vector<const Matrix*>& inputs,
                                const std::vector<Matrix*>& outputs)
             -> Status {
    Matrix acc = *inputs[0];
    for (size_t i = 1; i < inputs.size(); ++i) {
      TB_RETURN_IF_ERROR(ApplyOp(ops[i - 1], acc, *inputs[i], &acc));
    }
    *outputs[0] = std::move(acc);
    return Status::OK();
  };
}

Processor DrawProcessor(const WorkloadSpec& spec, int index) {
  if (spec.gpu_every <= 0) return Processor::kCpu;
  return index % spec.gpu_every == 0 ? Processor::kGpu : Processor::kCpu;
}

TaskSpec MakeSpec(const std::string& type, std::vector<Param> params,
                  KernelFn kernel, uint64_t bytes, Processor proc) {
  TaskSpec spec;
  spec.type = type;
  spec.params = std::move(params);
  spec.kernel = std::move(kernel);
  spec.cost = CostFor(bytes, proc == Processor::kGpu);
  spec.processor = proc;
  return spec;
}

void CompareAll(BuiltWorkload* w) {
  for (DataId d = 0; d < w->graph.num_data(); ++d) w->compare.push_back(d);
}

Result<BuiltWorkload> BuildChain(const WorkloadSpec& spec, Rng& rng) {
  BuiltWorkload w;
  const uint64_t bytes = static_cast<uint64_t>(spec.dim * spec.dim) * 8;
  const DataId acc = w.graph.AddData(RandomBlock(rng, spec.dim), "acc");
  for (int i = 0; i < spec.length; ++i) {
    const Op op = DrawOp(rng);
    const DataId aux =
        w.graph.AddData(RandomBlock(rng, spec.dim), StrFormat("aux%d", i));
    TB_ASSIGN_OR_RETURN(
        auto id,
        w.graph.Submit(MakeSpec(StrFormat("chain_op%d", static_cast<int>(op)),
                                {{aux, Dir::kIn}, {acc, Dir::kInOut}},
                                BinaryKernel(op), bytes,
                                DrawProcessor(spec, i))));
    (void)id;
  }
  CompareAll(&w);
  return w;
}

Result<BuiltWorkload> BuildFanOutFanIn(const WorkloadSpec& spec, Rng& rng) {
  BuiltWorkload w;
  const uint64_t bytes = static_cast<uint64_t>(spec.dim * spec.dim) * 8;
  const DataId root = w.graph.AddData(RandomBlock(rng, spec.dim), "root");
  std::vector<DataId> mids;
  std::vector<Op> mid_ops;
  for (int i = 0; i < spec.width; ++i) {
    const DataId aux =
        w.graph.AddData(RandomBlock(rng, spec.dim), StrFormat("aux%d", i));
    const DataId mid = w.graph.AddData(static_cast<uint64_t>(bytes),
                                       StrFormat("mid%d", i));
    const Op op = DrawOp(rng);
    mids.push_back(mid);
    mid_ops.push_back(op);
    TB_ASSIGN_OR_RETURN(
        auto id, w.graph.Submit(MakeSpec(
                     StrFormat("fan_op%d", static_cast<int>(op)),
                     {{root, Dir::kIn}, {aux, Dir::kIn}, {mid, Dir::kOut}},
                     [op](const std::vector<const Matrix*>& inputs,
                          const std::vector<Matrix*>& outputs) -> Status {
                       return ApplyOp(op, *inputs[0], *inputs[1], outputs[0]);
                     },
                     bytes, DrawProcessor(spec, i))));
    (void)id;
  }
  const DataId out = w.graph.AddData(static_cast<uint64_t>(bytes), "reduce");
  std::vector<Param> params;
  std::vector<Op> reduce_ops;
  params.push_back({out, Dir::kOut});
  for (size_t i = 0; i < mids.size(); ++i) {
    params.push_back({mids[i], Dir::kIn});
    if (i > 0) reduce_ops.push_back(Op::kAdd);
  }
  TB_ASSIGN_OR_RETURN(
      auto id, w.graph.Submit(MakeSpec("reduce", std::move(params),
                                       ReduceKernel(std::move(reduce_ops)),
                                       bytes, Processor::kCpu)));
  (void)id;
  CompareAll(&w);
  return w;
}

Result<BuiltWorkload> BuildWideLayers(const WorkloadSpec& spec, Rng& rng) {
  BuiltWorkload w;
  const uint64_t bytes = static_cast<uint64_t>(spec.dim * spec.dim) * 8;
  std::vector<DataId> prev;
  for (int j = 0; j < spec.width; ++j) {
    prev.push_back(
        w.graph.AddData(RandomBlock(rng, spec.dim), StrFormat("in%d", j)));
  }
  for (int l = 0; l < spec.length; ++l) {
    std::vector<DataId> cur;
    for (int j = 0; j < spec.width; ++j) {
      const Op op = DrawOp(rng);
      const DataId a = prev[static_cast<size_t>(j)];
      const DataId b =
          prev[static_cast<size_t>((j + 1) % spec.width)];
      const DataId out = w.graph.AddData(static_cast<uint64_t>(bytes),
                                         StrFormat("l%d_%d", l, j));
      cur.push_back(out);
      TB_ASSIGN_OR_RETURN(
          auto id,
          w.graph.Submit(MakeSpec(
              StrFormat("layer_op%d", static_cast<int>(op)),
              {{a, Dir::kIn}, {b, Dir::kIn}, {out, Dir::kOut}},
              BinaryKernel(op), bytes, DrawProcessor(spec, l * spec.width + j))));
      (void)id;
    }
    prev = std::move(cur);
  }
  CompareAll(&w);
  return w;
}

Result<BuiltWorkload> BuildRandomDag(const WorkloadSpec& spec, Rng& rng) {
  BuiltWorkload w;
  const uint64_t bytes = static_cast<uint64_t>(spec.dim * spec.dim) * 8;
  std::vector<DataId> pool;
  for (int j = 0; j < 4; ++j) {
    pool.push_back(
        w.graph.AddData(RandomBlock(rng, spec.dim), StrFormat("p%d", j)));
  }
  const int n = spec.length * spec.width;
  for (int t = 0; t < n; ++t) {
    const int num_inputs = 1 + static_cast<int>(rng.NextBounded(2));
    std::vector<Param> params;
    std::vector<Op> ops;
    for (int i = 0; i <= num_inputs; ++i) {
      params.push_back(
          {pool[static_cast<size_t>(rng.NextBounded(pool.size()))],
           Dir::kIn});
      if (i > 0) ops.push_back(DrawOp(rng));
    }
    const DataId out =
        w.graph.AddData(static_cast<uint64_t>(bytes), StrFormat("r%d", t));
    params.push_back({out, Dir::kOut});
    TB_ASSIGN_OR_RETURN(
        auto id, w.graph.Submit(MakeSpec(
                     "rand", std::move(params),
                     ReduceKernel(std::move(ops)), bytes,
                     DrawProcessor(spec, t))));
    (void)id;
    pool.push_back(out);
  }
  CompareAll(&w);
  return w;
}

Result<BuiltWorkload> BuildMatmulFamily(const WorkloadSpec& spec, Rng& rng,
                                        bool fma) {
  // Full input matrices drawn here so the oracle (a naive full-size
  // product) is independent of the workflow under test.
  Matrix a(spec.rows, spec.inner);
  Matrix b(spec.inner, spec.cols);
  const double scale = 1.0 / static_cast<double>(spec.inner);
  for (int64_t i = 0; i < a.size(); ++i) a.data()[i] = rng.Uniform(-1, 1);
  for (int64_t i = 0; i < b.size(); ++i) {
    b.data()[i] = rng.Uniform(-scale, scale);
  }

  TB_ASSIGN_OR_RETURN(
      const data::GridSpec a_spec,
      data::GridSpec::Create({"A", spec.rows, spec.inner}, spec.block_rows,
                             spec.block_cols));
  TB_ASSIGN_OR_RETURN(
      const data::GridSpec b_spec,
      data::GridSpec::Create({"B", spec.inner, spec.cols}, spec.block_cols,
                             spec.block_cols_b));

  algos::MatmulOptions options;
  options.processor = spec.gpu_every > 0 ? Processor::kGpu : Processor::kCpu;
  options.fma = fma;
  options.materialize = true;
  options.seed = spec.seed;
  options.a_values = &a;
  options.b_values = &b;
  TB_ASSIGN_OR_RETURN(algos::MatmulWorkflow flow,
                      algos::BuildMatmul(a_spec, b_spec, options));

  BuiltWorkload w;
  w.graph = std::move(flow.graph);
  TB_ASSIGN_OR_RETURN(const Matrix product, data::naive::Multiply(a, b));
  TB_ASSIGN_OR_RETURN(
      const data::GridSpec c_spec,
      data::GridSpec::Create({"C", spec.rows, spec.cols}, spec.block_rows,
                             spec.block_cols_b));
  for (size_t i = 0; i < flow.c.size(); ++i) {
    for (size_t j = 0; j < flow.c[i].size(); ++j) {
      const data::BlockExtent e =
          c_spec.ExtentAt(static_cast<int64_t>(i), static_cast<int64_t>(j));
      TB_ASSIGN_OR_RETURN(Matrix block,
                          product.Slice(e.row0, e.col0, e.rows, e.cols));
      w.oracle.push_back({flow.c[i][j], std::move(block)});
    }
  }
  CompareAll(&w);
  return w;
}

Result<BuiltWorkload> BuildKMeansFamily(const WorkloadSpec& spec) {
  TB_ASSIGN_OR_RETURN(
      const data::GridSpec grid,
      data::GridSpec::Create({"samples", spec.samples, spec.features},
                             spec.kmeans_block_rows, spec.features));
  algos::KMeansOptions options;
  options.num_clusters = spec.clusters;
  options.iterations = spec.iterations;
  options.processor = spec.gpu_every > 0 ? Processor::kGpu : Processor::kCpu;
  options.materialize = true;
  options.seed = spec.seed;
  options.blobs = true;
  TB_ASSIGN_OR_RETURN(algos::KMeansWorkflow flow,
                      algos::BuildKMeans(grid, options));
  BuiltWorkload w;
  w.graph = std::move(flow.graph);
  CompareAll(&w);
  return w;
}

/// Both wf families funnel through here: instance -> materialized
/// graph, comparing every registered datum.
Result<BuiltWorkload> BuildFromInstance(const wf::Instance& instance) {
  wf::BuildOptions options;
  options.materialize = true;
  TB_ASSIGN_OR_RETURN(wf::BuiltInstance built,
                      wf::BuildInstance(instance, options));
  BuiltWorkload w;
  w.graph = std::move(built.graph);
  w.compare = std::move(built.data);
  return w;
}

Result<BuiltWorkload> BuildWfBenchFamily(const WorkloadSpec& spec) {
  wf::GenOptions options;
  options.seed = spec.seed;
  options.levels = spec.wf_levels;
  options.width = spec.wf_width;
  options.max_parents = spec.wf_max_parents;
  options.heavy_tail_alpha = spec.wf_heavy_tail_alpha;
  options.straggler_fraction = spec.wf_straggler_fraction;
  options.types = wf::DefaultTaskTypes(spec.wf_gpu_types);
  const wf::Instance generated = wf::GenerateWfBench(options);
  // Round-trip through WfFormat JSON on every build: a generated
  // instance that fails to re-import (or re-imports differently) is a
  // bug this family exists to catch.
  TB_ASSIGN_OR_RETURN(const wf::Instance imported,
                      wf::ImportWfFormat(wf::ExportWfFormat(generated)));
  std::string why;
  if (!wf::StructurallyEqual(generated, imported, &why)) {
    return Status::Internal("wfbench round-trip mismatch: " + why);
  }
  return BuildFromInstance(imported);
}

Result<BuiltWorkload> BuildWfImportFamily(const WorkloadSpec& spec) {
  if (spec.wf_json.empty()) {
    return Status::InvalidArgument("kWfImport spec has empty wf_json");
  }
  TB_ASSIGN_OR_RETURN(const wf::Instance instance,
                      wf::ImportWfFormat(spec.wf_json));
  return BuildFromInstance(instance);
}

}  // namespace

std::string ToString(Family family) {
  switch (family) {
    case Family::kChain: return "chain";
    case Family::kFanOutFanIn: return "fan-out-fan-in";
    case Family::kWideLayers: return "wide-layers";
    case Family::kRandomDag: return "random-dag";
    case Family::kMatmul: return "matmul";
    case Family::kMatmulFma: return "matmul-fma";
    case Family::kKMeans: return "kmeans";
    case Family::kWfBench: return "wfbench";
    case Family::kWfImport: return "wf-import";
  }
  return "unknown";
}

std::string WorkloadSpec::Describe() const {
  switch (family) {
    case Family::kChain:
    case Family::kFanOutFanIn:
    case Family::kWideLayers:
    case Family::kRandomDag:
      return StrFormat("%s dim=%lld len=%d width=%d gpu_every=%d seed=%llu",
                       check::ToString(family).c_str(),
                       static_cast<long long>(dim), length, width, gpu_every,
                       static_cast<unsigned long long>(seed));
    case Family::kMatmul:
    case Family::kMatmulFma:
      return StrFormat(
          "%s %lldx%lldx%lld blocks=%lldx%lld/%lld gpu=%d seed=%llu",
          check::ToString(family).c_str(), static_cast<long long>(rows),
          static_cast<long long>(inner), static_cast<long long>(cols),
          static_cast<long long>(block_rows),
          static_cast<long long>(block_cols),
          static_cast<long long>(block_cols_b), gpu_every,
          static_cast<unsigned long long>(seed));
    case Family::kKMeans:
      return StrFormat(
          "kmeans n=%lld f=%lld k=%d iters=%d block_rows=%d gpu=%d seed=%llu",
          static_cast<long long>(samples), static_cast<long long>(features),
          clusters, iterations, kmeans_block_rows, gpu_every,
          static_cast<unsigned long long>(seed));
    case Family::kWfBench:
      return StrFormat(
          "wfbench levels=%d width=%d parents=%d alpha=%g straggle=%g "
          "gpu_types=%d seed=%llu",
          wf_levels, wf_width, wf_max_parents, wf_heavy_tail_alpha,
          wf_straggler_fraction, wf_gpu_types,
          static_cast<unsigned long long>(seed));
    case Family::kWfImport:
      return StrFormat("wf-import json_bytes=%zu seed=%llu", wf_json.size(),
                       static_cast<unsigned long long>(seed));
  }
  return "unknown";
}

WorkloadSpec GenerateSpec(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull);
  WorkloadSpec spec;
  spec.seed = seed;
  spec.family = static_cast<Family>(rng.NextBounded(7));
  spec.dim = 6 + static_cast<int64_t>(rng.NextBounded(22));
  spec.length = 4 + static_cast<int>(rng.NextBounded(12));
  spec.width = 3 + static_cast<int>(rng.NextBounded(6));
  const uint64_t gpu_draw = rng.NextBounded(3);
  spec.gpu_every = gpu_draw == 0 ? 0 : static_cast<int>(1 + gpu_draw);

  // Matmul shapes: exact-division grids (the paper's configuration
  // style) with 1..3 blocks per dimension and 4..12-element blocks.
  spec.block_rows = 4 + static_cast<int64_t>(rng.NextBounded(9));
  spec.block_cols = 4 + static_cast<int64_t>(rng.NextBounded(9));
  spec.block_cols_b = 4 + static_cast<int64_t>(rng.NextBounded(9));
  spec.rows = spec.block_rows * static_cast<int64_t>(1 + rng.NextBounded(3));
  spec.inner = spec.block_cols * static_cast<int64_t>(1 + rng.NextBounded(3));
  spec.cols =
      spec.block_cols_b * static_cast<int64_t>(1 + rng.NextBounded(3));

  spec.clusters = 2 + static_cast<int>(rng.NextBounded(3));
  spec.iterations = 1 + static_cast<int>(rng.NextBounded(3));
  spec.features = 2 + static_cast<int64_t>(rng.NextBounded(5));
  spec.kmeans_block_rows = 8 + static_cast<int>(rng.NextBounded(9));
  spec.samples = static_cast<int64_t>(spec.kmeans_block_rows) *
                 static_cast<int64_t>(2 + rng.NextBounded(4));
  return spec;
}

Result<BuiltWorkload> BuildWorkload(const WorkloadSpec& spec) {
  // A private stream per build, keyed off the spec seed only, so the
  // same spec always rebuilds the identical workload regardless of
  // what was built before it.
  Rng rng(spec.seed ^ 0xc2b2ae3d27d4eb4full);
  switch (spec.family) {
    case Family::kChain: return BuildChain(spec, rng);
    case Family::kFanOutFanIn: return BuildFanOutFanIn(spec, rng);
    case Family::kWideLayers: return BuildWideLayers(spec, rng);
    case Family::kRandomDag: return BuildRandomDag(spec, rng);
    case Family::kMatmul: return BuildMatmulFamily(spec, rng, false);
    case Family::kMatmulFma: return BuildMatmulFamily(spec, rng, true);
    case Family::kKMeans: return BuildKMeansFamily(spec);
    case Family::kWfBench: return BuildWfBenchFamily(spec);
    case Family::kWfImport: return BuildWfImportFamily(spec);
  }
  return Status::InvalidArgument("unknown workload family");
}

WorkloadSpec GenerateWfSpec(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 0xd6e8feb86659fd93ull);
  WorkloadSpec spec;
  spec.family = Family::kWfBench;
  spec.seed = seed;
  spec.wf_levels = 3 + static_cast<int>(rng.NextBounded(4));
  spec.wf_width = 2 + static_cast<int>(rng.NextBounded(4));
  spec.wf_max_parents = 1 + static_cast<int>(rng.NextBounded(3));
  // A third of the corpus is heavy-tailed, a quarter has stragglers,
  // and gpu mixes cover none/one/two GPU task types.
  if (rng.NextBounded(3) == 0) {
    spec.wf_heavy_tail_alpha = 1.1 + rng.NextDouble() * 1.5;
  }
  if (rng.NextBounded(4) == 0) {
    spec.wf_straggler_fraction = 0.1 + rng.NextDouble() * 0.2;
  }
  spec.wf_gpu_types = static_cast<int>(rng.NextBounded(3));
  return spec;
}

}  // namespace taskbench::check
