#ifndef TASKBENCH_CHECK_WORKLOAD_H_
#define TASKBENCH_CHECK_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/matrix.h"
#include "runtime/task_graph.h"

namespace taskbench::check {

/// DAG families the randomized workload generator draws from. The
/// synthetic families stress the runtime's dependency machinery
/// (INOUT chains, fan-out/fan-in joins, wide layers, random DAGs);
/// the algorithm families stress the real workflow builders with
/// randomized block shapes and grids, exactly the corpus-style
/// coverage WfBench argues hand-written benchmarks lack.
enum class Family {
  kChain,        ///< INOUT accumulator chain with interleaved transposes
  kFanOutFanIn,  ///< one producer, W independent middles, one reduce
  kWideLayers,   ///< L layers of W tasks, each reading the layer above
  kRandomDag,    ///< random edges over a growing datum pool
  kMatmul,       ///< algos::BuildMatmul with a randomized grid
  kMatmulFma,    ///< the FMA matmul variant (Figure 12 generalizability)
  kKMeans,       ///< algos::BuildKMeans with randomized blocks/k/iters
  // Appended after the original seven: GenerateSpec still draws from
  // the first seven only (changing its modulus would remap every
  // existing fuzz seed); the wf families come from GenerateWfSpec and
  // explicit specs.
  kWfBench,   ///< wf::GenerateWfBench -> export -> import -> build
  kWfImport,  ///< wf::ImportWfFormat of `wf_json` -> build
};

std::string ToString(Family family);

/// A fully-determined workload description. Two BuildWorkload calls
/// on the same spec produce identical graphs (same structure, same
/// materialized values, same costs) — the property the differential
/// runner depends on, since TaskGraph is move-only and the thread
/// pool mutates graph values, so every execution config gets a fresh
/// build.
struct WorkloadSpec {
  Family family = Family::kChain;
  uint64_t seed = 0;

  // Synthetic families. `dim` is the square block edge; every
  // synthetic datum is dim x dim so Add/Multiply/Transpose always
  // compose.
  int64_t dim = 16;
  int length = 8;  ///< chain length / number of layers
  int width = 4;   ///< fan-out width / tasks per layer
  int gpu_every = 0;  ///< every n-th task targets the GPU; 0 = none

  // Matmul families: C = A(rows x inner) * B(inner x cols). A is
  // blocked block_rows x block_cols; B is blocked block_cols x
  // block_cols_b (the compatibility constraint of BuildMatmul).
  int64_t rows = 32, inner = 32, cols = 32;
  int64_t block_rows = 16, block_cols = 16, block_cols_b = 16;

  // K-means family.
  int64_t samples = 48, features = 3;
  int clusters = 3, iterations = 2, kmeans_block_rows = 16;

  // Workflow families. kWfBench generates with these knobs (see
  // wf::GenOptions), round-trips the instance through WfFormat JSON,
  // and builds the re-imported copy — every wf fuzz seed exercises
  // generator, exporter, importer and builder. kWfImport builds the
  // WfFormat document in `wf_json` directly (golden fixtures).
  int wf_levels = 4;
  int wf_width = 4;
  int wf_max_parents = 3;
  double wf_heavy_tail_alpha = 0;
  double wf_straggler_fraction = 0;
  int wf_gpu_types = 0;
  std::string wf_json;

  /// One-line human description ("chain len=12 dim=24 seed=7").
  std::string Describe() const;
};

/// Draws a random spec for `seed`: family, shape parameters and value
/// seed all come from one seeded stream, so the corpus is stable
/// across runs and platforms. Sizes are kept small enough that one
/// seed's full differential matrix runs in well under a second.
WorkloadSpec GenerateSpec(uint64_t seed);

/// Draws a random kWfBench spec for `seed` — the wf fuzz corpus
/// (taskbench_fuzz --wf-seeds). A separate generator keeps the
/// original GenerateSpec corpus stable seed-for-seed.
WorkloadSpec GenerateWfSpec(uint64_t seed);

/// An independently-computed expected value for one datum (closed-form
/// oracle; only families with one have any).
struct OracleEntry {
  runtime::DataId id = -1;
  data::Matrix expected;
};

/// A built workload: the graph (materialized values + kernels for the
/// thread pool, cost descriptors for the simulator) plus the data ids
/// whose final values the differential runner compares.
struct BuiltWorkload {
  runtime::TaskGraph graph;
  /// Data whose post-run values configurations must agree on.
  std::vector<runtime::DataId> compare;
  /// Closed-form expected values (matmul families: blocks of the
  /// naively-computed full product). Empty when no closed form exists.
  std::vector<OracleEntry> oracle;
};

/// Deterministically builds `spec` (see WorkloadSpec). Fails only on
/// internal construction errors — every GenerateSpec output builds.
Result<BuiltWorkload> BuildWorkload(const WorkloadSpec& spec);

}  // namespace taskbench::check

#endif  // TASKBENCH_CHECK_WORKLOAD_H_
