#ifndef TASKBENCH_COMMON_LOGGING_H_
#define TASKBENCH_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace taskbench {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kInfo; tests lower it to kDebug when diagnosing.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink that emits one line to stderr on destruction.
/// Use via the TB_LOG macro rather than directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after emitting. Used by TB_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace taskbench

#define TB_LOG(level)                                          \
  ::taskbench::internal::LogMessage(::taskbench::LogLevel::k##level, \
                                    __FILE__, __LINE__)

/// Invariant check: logs and aborts when `cond` is false. Active in all
/// build modes — used for programmer errors, not recoverable conditions
/// (those return Status).
#define TB_CHECK(cond)                                                 \
  if (cond) {                                                          \
  } else /* NOLINT */                                                  \
    ::taskbench::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define TB_CHECK_OK(expr)                                     \
  do {                                                        \
    ::taskbench::Status _tb_check_status = (expr);            \
    TB_CHECK(_tb_check_status.ok()) << _tb_check_status.ToString(); \
  } while (false)

#endif  // TASKBENCH_COMMON_LOGGING_H_
