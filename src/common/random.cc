#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace taskbench {

namespace {
inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBounded(uint64_t n) {
  TB_CHECK(n > 0) << "NextBounded requires n > 0";
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextGaussian() {
  // Box-Muller transform; draws two uniforms per call.
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace taskbench
