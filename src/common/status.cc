#include "common/status.h"

namespace taskbench {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kRejectedAdmission:
      return "RejectedAdmission";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

Status Status::WithContext(std::string_view context) const& {
  return Status(*this).WithContext(context);
}

Status Status::WithContext(std::string_view context) && {
  if (ok() || context.empty()) return std::move(*this);
  std::string combined(context);
  if (!message_.empty()) {
    combined += ": ";
    combined += message_;
  }
  message_ = std::move(combined);
  return std::move(*this);
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace taskbench
