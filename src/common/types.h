#ifndef TASKBENCH_COMMON_TYPES_H_
#define TASKBENCH_COMMON_TYPES_H_

#include <string>

namespace taskbench {

/// Processor type a task executes on — one of the paper's resource
/// factors (Table 1, factor f). Serial tasks run on CPU cores;
/// partially/fully parallel tasks may be accelerated on GPU devices
/// (Section 3.3).
enum class Processor { kCpu, kGpu };

inline std::string ToString(Processor p) {
  return p == Processor::kCpu ? "CPU" : "GPU";
}

/// Scheduling policies. The first two are the paper's (Sections 3.2
/// and 4.4.2): dispatch in task generation order (cheap) or
/// considering data locality (more work per scheduling decision).
/// kCostModel is the scored extension (ROADMAP item 2): HEFT-style
/// remaining-critical-path / slack / age scoring with optional
/// speculative hedging and CPU->GPU escalation (docs/SCHEDULERS.md).
enum class SchedulingPolicy { kTaskGenerationOrder, kDataLocality, kCostModel };

inline std::string ToString(SchedulingPolicy p) {
  switch (p) {
    case SchedulingPolicy::kTaskGenerationOrder:
      return "task-gen-order";
    case SchedulingPolicy::kDataLocality:
      return "data-locality";
    case SchedulingPolicy::kCostModel:
      return "cost-model";
  }
  return "unknown";
}

}  // namespace taskbench

#endif  // TASKBENCH_COMMON_TYPES_H_
