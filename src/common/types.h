#ifndef TASKBENCH_COMMON_TYPES_H_
#define TASKBENCH_COMMON_TYPES_H_

#include <string>

namespace taskbench {

/// Processor type a task executes on — one of the paper's resource
/// factors (Table 1, factor f). Serial tasks run on CPU cores;
/// partially/fully parallel tasks may be accelerated on GPU devices
/// (Section 3.3).
enum class Processor { kCpu, kGpu };

inline std::string ToString(Processor p) {
  return p == Processor::kCpu ? "CPU" : "GPU";
}

/// Scheduling policies the paper evaluates (Sections 3.2 and 4.4.2):
/// dispatch in task generation order (cheap) or considering data
/// locality (more work per scheduling decision).
enum class SchedulingPolicy { kTaskGenerationOrder, kDataLocality };

inline std::string ToString(SchedulingPolicy p) {
  return p == SchedulingPolicy::kTaskGenerationOrder ? "task-gen-order"
                                                     : "data-locality";
}

}  // namespace taskbench

#endif  // TASKBENCH_COMMON_TYPES_H_
