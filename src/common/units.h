#ifndef TASKBENCH_COMMON_UNITS_H_
#define TASKBENCH_COMMON_UNITS_H_

#include <cstdint>

namespace taskbench {

/// Byte-size constants. The paper reports block sizes in binary MB/GB
/// (e.g. "8192 MB"); we keep the same convention everywhere.
inline constexpr uint64_t kKiB = 1024ULL;
inline constexpr uint64_t kMiB = 1024ULL * kKiB;
inline constexpr uint64_t kGiB = 1024ULL * kMiB;

/// Size of one dataset element. The paper generates float64 matrices.
inline constexpr uint64_t kElementBytes = 8;

/// Converts an element count to bytes (float64 elements).
inline constexpr uint64_t ElementsToBytes(uint64_t elements) {
  return elements * kElementBytes;
}

/// Converts a byte count to float64 element count (rounding down).
inline constexpr uint64_t BytesToElements(uint64_t bytes) {
  return bytes / kElementBytes;
}

}  // namespace taskbench

#endif  // TASKBENCH_COMMON_UNITS_H_
