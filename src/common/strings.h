#ifndef TASKBENCH_COMMON_STRINGS_H_
#define TASKBENCH_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace taskbench {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a byte count with a binary-unit suffix, e.g. "512.0 MB".
/// The unit is chosen after rounding to one decimal, so values just
/// under a boundary roll over ("1.0 MB", never "1024.0 KB").
std::string HumanBytes(uint64_t bytes);

/// Escapes `s` for interpolation into a JSON string literal: quotes,
/// backslashes and control characters become their \-escapes (or
/// \u00XX). Every exporter that emits user-controlled names (task
/// types, metric names, file paths) into JSON must route through
/// this — unescaped interpolation produced invalid trace documents.
std::string JsonEscape(std::string_view s);

/// Renders a duration in seconds with an adaptive unit, e.g. "12.3 ms".
std::string HumanSeconds(double seconds);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char delim);

/// Left-pads (`PadLeft`) or right-pads (`PadRight`) `s` with spaces to
/// `width` columns; strings already wider are returned unchanged.
std::string PadLeft(std::string_view s, size_t width);
std::string PadRight(std::string_view s, size_t width);

/// Strict numeric parsers for the public surface (CLI flags, fault
/// plan specs, bench arguments): the whole string must be a valid
/// number — leading whitespace, trailing garbage, empty strings and
/// range overflows are InvalidArgument, never a throw or a silent
/// zero (the failure modes of std::stoll / std::atoll respectively).
/// ParseDouble additionally rejects non-finite values ("nan", "inf"):
/// no flag or spec in this codebase means anything with them.
Result<int64_t> ParseInt64(std::string_view text);
Result<double> ParseDouble(std::string_view text);

}  // namespace taskbench

#endif  // TASKBENCH_COMMON_STRINGS_H_
