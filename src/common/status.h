#ifndef TASKBENCH_COMMON_STATUS_H_
#define TASKBENCH_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace taskbench {

/// Error categories used across the library. Modeled after the
/// RocksDB/Arrow convention: library code never throws; fallible
/// operations return a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,       ///< e.g. a block does not fit in GPU device memory.
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  kCancelled,           ///< cooperatively cancelled by the caller.
  kRejectedAdmission,   ///< backpressure: a service queue refused the work.
  kDeadlineExceeded,    ///< a submission outlived its queue deadline.
};

/// Returns a stable human-readable name for a status code ("OutOfMemory").
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type carrying success or an (code, message) error.
///
/// Usage:
///   Status s = DoWork();
///   if (!s.ok()) return s;
/// or with the helper macro: TB_RETURN_IF_ERROR(DoWork());
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status RejectedAdmission(std::string msg) {
    return Status(StatusCode::kRejectedAdmission, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns a copy of this status with `context` prepended to the
  /// message ("context: message"), keeping the code. Chainable, so
  /// errors can accumulate provenance as they bubble up — e.g. an
  /// injected storage fault reports "task 17 attempt 2 on node 3:
  /// injected get failure". No-op on OK statuses.
  Status WithContext(std::string_view context) const&;
  Status WithContext(std::string_view context) &&;

  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsRejectedAdmission() const {
    return code_ == StatusCode::kRejectedAdmission;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace taskbench

/// Propagates a non-OK Status to the caller.
#define TB_RETURN_IF_ERROR(expr)                   \
  do {                                             \
    ::taskbench::Status _tb_status = (expr);       \
    if (!_tb_status.ok()) return _tb_status;       \
  } while (false)

#endif  // TASKBENCH_COMMON_STATUS_H_
