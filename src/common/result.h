#ifndef TASKBENCH_COMMON_RESULT_H_
#define TASKBENCH_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace taskbench {

/// Result<T> holds either a value of type T or a non-OK Status,
/// following the Arrow convention. Accessing the value of an errored
/// Result aborts in debug builds (assert) and is undefined otherwise,
/// so callers must check ok() first or use the TB_ASSIGN_OR_RETURN macro.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK when value_ holds a value.
  std::optional<T> value_;
};

}  // namespace taskbench

/// Unwraps a Result into `lhs` or propagates its error status.
/// Usage: TB_ASSIGN_OR_RETURN(auto grid, Grid::Create(...));
#define TB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value()

#define TB_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define TB_ASSIGN_OR_RETURN_NAME(x, y) TB_ASSIGN_OR_RETURN_CONCAT(x, y)

#define TB_ASSIGN_OR_RETURN(lhs, expr) \
  TB_ASSIGN_OR_RETURN_IMPL(            \
      TB_ASSIGN_OR_RETURN_NAME(_tb_result_, __LINE__), lhs, expr)

#endif  // TASKBENCH_COMMON_RESULT_H_
