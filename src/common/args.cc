#include "common/args.h"

#include <cstdlib>

#include "common/strings.h"

namespace taskbench {

Args Args::Parse(int argc, const char* const* argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      args.positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      args.options_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options_[body] = argv[++i];
    } else {
      args.options_[body] = "true";
    }
  }
  return args;
}

std::string Args::GetString(const std::string& key,
                            const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

Result<int64_t> Args::GetInt(const std::string& key, int64_t fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  auto value = ParseInt64(it->second);
  if (!value.ok()) {
    return value.status().WithContext(StrFormat("--%s", key.c_str()));
  }
  return *value;
}

Result<double> Args::GetDouble(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  auto value = ParseDouble(it->second);
  if (!value.ok()) {
    return value.status().WithContext(StrFormat("--%s", key.c_str()));
  }
  return *value;
}

Result<bool> Args::GetBool(const std::string& key, bool fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  return Status::InvalidArgument(StrFormat(
      "--%s expects true/false, got '%s'", key.c_str(), v.c_str()));
}

std::vector<std::string> Args::UnknownKeys(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [key, _] : options_) {
    bool found = false;
    for (const std::string& k : known) {
      if (k == key) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back(key);
  }
  return unknown;
}

}  // namespace taskbench
