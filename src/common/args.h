#ifndef TASKBENCH_COMMON_ARGS_H_
#define TASKBENCH_COMMON_ARGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace taskbench {

/// Minimal command-line parser for the tools: positional arguments
/// plus `--key=value` / `--flag` options. No external dependencies.
class Args {
 public:
  /// Parses argv[1..). `--key=value` and `--key value` both work;
  /// a bare `--key` is a boolean flag with value "true".
  static Args Parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& key) const { return options_.count(key) > 0; }

  /// The option's value, or `fallback` when absent.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;

  /// Integer option; fails on non-numeric values.
  Result<int64_t> GetInt(const std::string& key, int64_t fallback) const;

  /// Double option; fails on non-numeric values.
  Result<double> GetDouble(const std::string& key, double fallback) const;

  /// Boolean flag: absent -> fallback; "", "true", "1" -> true;
  /// "false", "0" -> false; anything else fails.
  Result<bool> GetBool(const std::string& key, bool fallback) const;

  /// Keys that were provided but are not in `known` (typo detection).
  std::vector<std::string> UnknownKeys(
      const std::vector<std::string>& known) const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;
};

}  // namespace taskbench

#endif  // TASKBENCH_COMMON_ARGS_H_
