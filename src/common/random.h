#ifndef TASKBENCH_COMMON_RANDOM_H_
#define TASKBENCH_COMMON_RANDOM_H_

#include <cstdint>

namespace taskbench {

/// Deterministic, seedable PRNG (xoshiro256** core, SplitMix64 seeding).
/// Used everywhere a random stream is needed so experiments are exactly
/// reproducible across runs and platforms — mirroring the paper's use of
/// a fixed NumPy random state (Section 4.4.5). Not cryptographic.
class Rng {
 public:
  /// Seeds the generator; the same seed yields the same stream.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBounded(uint64_t n);

  /// Standard normal via Box-Muller (no cached spare; stateless per call
  /// pair so streams stay reproducible under reordering).
  double NextGaussian();

 private:
  uint64_t state_[4];
};

}  // namespace taskbench

#endif  // TASKBENCH_COMMON_RANDOM_H_
