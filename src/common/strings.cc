#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace taskbench {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 5) {
    value /= 1024.0;
    ++unit;
  }
  // The %.1f below rounds; a value in [1023.95, 1024) would render as
  // "1024.0 KB"-style nonsense. Roll such values into the next unit
  // before formatting.
  if (unit < 5 && std::round(value * 10.0) / 10.0 >= 1024.0) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StrFormat("%.1f %s", value, kUnits[unit]);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string HumanSeconds(double seconds) {
  if (seconds < 0) return "-" + HumanSeconds(-seconds);
  if (seconds >= 1.0) return StrFormat("%.3f s", seconds);
  if (seconds >= 1e-3) return StrFormat("%.3f ms", seconds * 1e3);
  if (seconds >= 1e-6) return StrFormat("%.3f us", seconds * 1e6);
  return StrFormat("%.1f ns", seconds * 1e9);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

Result<int64_t> ParseInt64(std::string_view text) {
  const std::string buf(text);  // strtoll needs NUL termination
  if (buf.empty()) {
    return Status::InvalidArgument("expected an integer, got ''");
  }
  // strtoll silently skips leading whitespace; a flag like
  // --retries=" 3" is malformed input, not a 3.
  if (std::isspace(static_cast<unsigned char>(buf[0]))) {
    return Status::InvalidArgument(
        StrFormat("expected an integer, got '%s'", buf.c_str()));
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::InvalidArgument(
        StrFormat("expected an integer, got '%s'", buf.c_str()));
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(std::string_view text) {
  const std::string buf(text);
  if (buf.empty()) {
    return Status::InvalidArgument("expected a number, got ''");
  }
  // strtod skips leading whitespace and happily parses "nan"/"inf";
  // neither is a meaningful value for any flag or spec here.
  if (std::isspace(static_cast<unsigned char>(buf[0]))) {
    return Status::InvalidArgument(
        StrFormat("expected a number, got '%s'", buf.c_str()));
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE ||
      !std::isfinite(value)) {
    return Status::InvalidArgument(
        StrFormat("expected a finite number, got '%s'", buf.c_str()));
  }
  return value;
}

std::string PadLeft(std::string_view s, size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string PadRight(std::string_view s, size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(s) + std::string(width - s.size(), ' ');
}

}  // namespace taskbench
