#include "data/grid.h"

#include <algorithm>

#include "common/strings.h"

namespace taskbench::data {

namespace {
int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }
}  // namespace

GridSpec::GridSpec(DatasetSpec dataset, int64_t block_rows, int64_t block_cols)
    : dataset_(std::move(dataset)),
      block_rows_(block_rows),
      block_cols_(block_cols),
      grid_rows_(CeilDiv(dataset_.rows, block_rows)),
      grid_cols_(CeilDiv(dataset_.cols, block_cols)) {}

Result<GridSpec> GridSpec::Create(DatasetSpec dataset, int64_t block_rows,
                                  int64_t block_cols) {
  if (dataset.rows <= 0 || dataset.cols <= 0) {
    return Status::InvalidArgument(
        StrFormat("dataset '%s' has non-positive dimensions %lldx%lld",
                  dataset.name.c_str(), static_cast<long long>(dataset.rows),
                  static_cast<long long>(dataset.cols)));
  }
  if (block_rows <= 0 || block_cols <= 0) {
    return Status::InvalidArgument(
        StrFormat("block dimension must be positive, got %lldx%lld",
                  static_cast<long long>(block_rows),
                  static_cast<long long>(block_cols)));
  }
  if (block_rows > dataset.rows || block_cols > dataset.cols) {
    return Status::InvalidArgument(StrFormat(
        "block dimension %lldx%lld exceeds dataset dimension %lldx%lld",
        static_cast<long long>(block_rows), static_cast<long long>(block_cols),
        static_cast<long long>(dataset.rows),
        static_cast<long long>(dataset.cols)));
  }
  return GridSpec(std::move(dataset), block_rows, block_cols);
}

Result<GridSpec> GridSpec::CreateFromGridDim(DatasetSpec dataset,
                                             int64_t grid_rows,
                                             int64_t grid_cols) {
  if (grid_rows <= 0 || grid_cols <= 0) {
    return Status::InvalidArgument(
        StrFormat("grid dimension must be positive, got %lldx%lld",
                  static_cast<long long>(grid_rows),
                  static_cast<long long>(grid_cols)));
  }
  if (dataset.rows <= 0 || dataset.cols <= 0) {
    return Status::InvalidArgument("dataset has non-positive dimensions");
  }
  if (grid_rows > dataset.rows || grid_cols > dataset.cols) {
    return Status::InvalidArgument(StrFormat(
        "grid dimension %lldx%lld exceeds dataset dimension %lldx%lld",
        static_cast<long long>(grid_rows), static_cast<long long>(grid_cols),
        static_cast<long long>(dataset.rows),
        static_cast<long long>(dataset.cols)));
  }
  return Create(std::move(dataset), CeilDiv(dataset.rows, grid_rows),
                CeilDiv(dataset.cols, grid_cols));
}

BlockExtent GridSpec::ExtentAt(int64_t bk, int64_t bl) const {
  BlockExtent extent;
  extent.row0 = bk * block_rows_;
  extent.col0 = bl * block_cols_;
  extent.rows = std::min(block_rows_, dataset_.rows - extent.row0);
  extent.cols = std::min(block_cols_, dataset_.cols - extent.col0);
  return extent;
}

std::string GridSpec::GridDimString() const {
  return StrFormat("%lldx%lld", static_cast<long long>(grid_rows_),
                   static_cast<long long>(grid_cols_));
}

}  // namespace taskbench::data
