#include "data/kernels.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/strings.h"

// This translation unit holds the hot kernels and is the only one the
// build may compile with host-tuned codegen flags (-march=native when
// available; see src/data/CMakeLists.txt). Keep slow-path / reference
// code in matrix.cc so the benchmark baseline stays on the project's
// default flags.

namespace taskbench::data {

namespace {

std::atomic<KernelVariant> g_default_variant{KernelVariant::kBlocked};

// GEMM tile geometry. The MR x NR register tile is accumulated in
// locals across a full K panel (MR*NR = 64 doubles: 8 AVX-512 or 16
// AVX2 accumulator registers once vectorized); KC sizes the packed
// panels so an A slab (KC*MR) plus a B slab (KC*NR) stay L2-resident;
// NC bounds the packed-B working set.
constexpr int64_t kMr = 4;
constexpr int64_t kNr = 16;
constexpr int64_t kKc = 256;
constexpr int64_t kNc = 2048;

// Transpose tile edge: two 64x64 double tiles = 64 KiB, L1/L2 sized.
constexpr int64_t kTransposeTile = 64;

/// MR x NR micro-kernel: acc[r][j] += sum_k ap[k][r] * bp[k][j] with
/// the accumulators held in registers for the whole K panel, then
/// added into C once. `ap` is an MR-interleaved A slab, `bp` an
/// NR-interleaved B slab (both packed, contiguous), so every load in
/// the inner loop is sequential.
__attribute__((always_inline)) inline void MicroKernel(
    const double* __restrict ap, const double* __restrict bp,
    double* __restrict c, int64_t ldc, int64_t kc) {
  double acc0[kNr] = {};
  double acc1[kNr] = {};
  double acc2[kNr] = {};
  double acc3[kNr] = {};
  for (int64_t k = 0; k < kc; ++k) {
    const double* __restrict bk = bp + k * kNr;
    const double a0 = ap[k * kMr + 0];
    const double a1 = ap[k * kMr + 1];
    const double a2 = ap[k * kMr + 2];
    const double a3 = ap[k * kMr + 3];
    for (int64_t j = 0; j < kNr; ++j) {
      const double bj = bk[j];
      acc0[j] += a0 * bj;
      acc1[j] += a1 * bj;
      acc2[j] += a2 * bj;
      acc3[j] += a3 * bj;
    }
  }
  for (int64_t j = 0; j < kNr; ++j) c[0 * ldc + j] += acc0[j];
  for (int64_t j = 0; j < kNr; ++j) c[1 * ldc + j] += acc1[j];
  for (int64_t j = 0; j < kNr; ++j) c[2 * ldc + j] += acc2[j];
  for (int64_t j = 0; j < kNr; ++j) c[3 * ldc + j] += acc3[j];
}

/// C += A * B on raw row-major buffers (M x N times N x Q).
void GemmBlocked(const double* a, const double* b, double* c, int64_t m,
                 int64_t n, int64_t q) {
  std::vector<double> bpack(static_cast<size_t>(kKc * kNc));
  const int64_t full_rows = (m / kMr) * kMr;
  std::vector<double> apack(static_cast<size_t>(full_rows * kKc));
  for (int64_t kk = 0; kk < n; kk += kKc) {
    const int64_t kc = std::min(kKc, n - kk);
    // Pack A rows [0, full_rows) of this K panel, MR-interleaved:
    // apack[(i/MR)*(kc*MR) + k*MR + r] = A[i+r][kk+k].
    for (int64_t i = 0; i < full_rows; i += kMr) {
      double* dst = apack.data() + (i / kMr) * (kc * kMr);
      for (int64_t k = 0; k < kc; ++k) {
        for (int64_t r = 0; r < kMr; ++r) {
          dst[k * kMr + r] = a[(i + r) * n + kk + k];
        }
      }
    }
    for (int64_t jj = 0; jj < q; jj += kNc) {
      const int64_t nc = std::min(kNc, q - jj);
      // Pack B panel [kk, kk+kc) x [jj, jj+nc) into NR slabs, zero
      // padding the ragged last slab so the micro-kernel never reads
      // out of bounds.
      for (int64_t jb = 0; jb < nc; jb += kNr) {
        const int64_t nr = std::min(kNr, nc - jb);
        double* dst = bpack.data() + jb * kc;
        for (int64_t k = 0; k < kc; ++k) {
          const double* src = b + (kk + k) * q + jj + jb;
          for (int64_t j = 0; j < nr; ++j) dst[k * kNr + j] = src[j];
          for (int64_t j = nr; j < kNr; ++j) dst[k * kNr + j] = 0.0;
        }
      }
      for (int64_t i = 0; i < full_rows; i += kMr) {
        const double* ap = apack.data() + (i / kMr) * (kc * kMr);
        int64_t jb = 0;
        for (; jb + kNr <= nc; jb += kNr) {
          MicroKernel(ap, bpack.data() + jb * kc, c + i * q + jj + jb, q, kc);
        }
        if (jb < nc) {  // ragged j edge: guarded scalar tile
          const int64_t nr = nc - jb;
          const double* bp = bpack.data() + jb * kc;
          for (int64_t k = 0; k < kc; ++k) {
            for (int64_t r = 0; r < kMr; ++r) {
              const double av = ap[k * kMr + r];
              double* crow = c + (i + r) * q + jj + jb;
              for (int64_t j = 0; j < nr; ++j) {
                crow[j] += av * bp[k * kNr + j];
              }
            }
          }
        }
      }
      // Ragged i edge (m % MR trailing rows): streaming i-k-j over
      // the original (unpacked) operands.
      for (int64_t i = full_rows; i < m; ++i) {
        const double* arow = a + i * n;
        double* crow = c + i * q;
        for (int64_t k = kk; k < kk + kc; ++k) {
          const double aik = arow[k];
          const double* brow = b + k * q;
          for (int64_t j = jj; j < jj + nc; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

}  // namespace

KernelVariant DefaultKernelVariant() {
  return g_default_variant.load(std::memory_order_relaxed);
}

void SetDefaultKernelVariant(KernelVariant variant) {
  g_default_variant.store(variant, std::memory_order_relaxed);
}

namespace blocked {

Result<Matrix> Multiply(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument(StrFormat(
        "matmul inner dimension mismatch: %lldx%lld * %lldx%lld",
        static_cast<long long>(a.rows()), static_cast<long long>(a.cols()),
        static_cast<long long>(b.rows()), static_cast<long long>(b.cols())));
  }
  Matrix c(a.rows(), b.cols(), 0.0);
  if (!c.empty() && a.cols() > 0) {
    GemmBlocked(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.cols());
  }
  return c;
}

Result<Matrix> Add(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return Status::InvalidArgument(StrFormat(
        "add shape mismatch: %lldx%lld + %lldx%lld",
        static_cast<long long>(a.rows()), static_cast<long long>(a.cols()),
        static_cast<long long>(b.rows()), static_cast<long long>(b.cols())));
  }
  Matrix c(a.rows(), a.cols());
  const double* __restrict pa = a.data();
  const double* __restrict pb = b.data();
  double* __restrict pc = c.data();
  const int64_t size = a.size();
  int64_t i = 0;
  for (; i + 4 <= size; i += 4) {
    pc[i + 0] = pa[i + 0] + pb[i + 0];
    pc[i + 1] = pa[i + 1] + pb[i + 1];
    pc[i + 2] = pa[i + 2] + pb[i + 2];
    pc[i + 3] = pa[i + 3] + pb[i + 3];
  }
  for (; i < size; ++i) pc[i] = pa[i] + pb[i];
  return c;
}

Matrix Transpose(const Matrix& m) {
  Matrix out(m.cols(), m.rows());
  const int64_t rows = m.rows();
  const int64_t cols = m.cols();
  const double* src = m.data();
  double* dst = out.data();
  for (int64_t r0 = 0; r0 < rows; r0 += kTransposeTile) {
    const int64_t rend = std::min(rows, r0 + kTransposeTile);
    for (int64_t c0 = 0; c0 < cols; c0 += kTransposeTile) {
      const int64_t cend = std::min(cols, c0 + kTransposeTile);
      for (int64_t r = r0; r < rend; ++r) {
        const double* in_row = src + r * cols;
        for (int64_t c = c0; c < cend; ++c) {
          dst[c * rows + r] = in_row[c];
        }
      }
    }
  }
  return out;
}

}  // namespace blocked

Result<Matrix> Multiply(const Matrix& a, const Matrix& b) {
  return DefaultKernelVariant() == KernelVariant::kBlocked
             ? blocked::Multiply(a, b)
             : naive::Multiply(a, b);
}

Result<Matrix> Add(const Matrix& a, const Matrix& b) {
  return DefaultKernelVariant() == KernelVariant::kBlocked
             ? blocked::Add(a, b)
             : naive::Add(a, b);
}

Matrix Transpose(const Matrix& m) {
  return DefaultKernelVariant() == KernelVariant::kBlocked
             ? blocked::Transpose(m)
             : naive::Transpose(m);
}

}  // namespace taskbench::data
