#include "data/matrix.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/strings.h"

namespace taskbench::data {

namespace {

// rows * cols, rejecting negative dimensions and products that
// overflow int64_t before the multiply happens.
size_t CheckedElementCount(int64_t rows, int64_t cols) {
  TB_CHECK(rows >= 0 && cols >= 0)
      << "matrix dimensions must be non-negative, got " << rows << "x" << cols;
  TB_CHECK(rows == 0 || cols <= std::numeric_limits<int64_t>::max() / rows)
      << "matrix dimensions overflow: " << rows << "x" << cols;
  return static_cast<size_t>(rows) * static_cast<size_t>(cols);
}

}  // namespace

Matrix::Matrix(int64_t rows, int64_t cols, double fill)
    : rows_(rows), cols_(cols), data_(CheckedElementCount(rows, cols), fill) {}

Result<Matrix> Matrix::Slice(int64_t row0, int64_t col0, int64_t rows,
                             int64_t cols) const {
  if (row0 < 0 || col0 < 0 || rows < 0 || cols < 0 || row0 + rows > rows_ ||
      col0 + cols > cols_) {
    return Status::InvalidArgument(StrFormat(
        "slice [%lld+%lld, %lld+%lld) out of bounds for %lldx%lld matrix",
        static_cast<long long>(row0), static_cast<long long>(rows),
        static_cast<long long>(col0), static_cast<long long>(cols),
        static_cast<long long>(rows_), static_cast<long long>(cols_)));
  }
  Matrix out(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    const double* src = data_.data() + (row0 + r) * cols_ + col0;
    std::copy(src, src + cols, out.data_.data() + r * cols);
  }
  return out;
}

Status Matrix::AssignSlice(int64_t row0, int64_t col0, const Matrix& block) {
  if (row0 < 0 || col0 < 0 || row0 + block.rows() > rows_ ||
      col0 + block.cols() > cols_) {
    return Status::InvalidArgument(StrFormat(
        "assign of %lldx%lld block at (%lld,%lld) out of bounds for "
        "%lldx%lld matrix",
        static_cast<long long>(block.rows()),
        static_cast<long long>(block.cols()), static_cast<long long>(row0),
        static_cast<long long>(col0), static_cast<long long>(rows_),
        static_cast<long long>(cols_)));
  }
  for (int64_t r = 0; r < block.rows(); ++r) {
    const double* src = block.data_.data() + r * block.cols();
    std::copy(src, src + block.cols(),
              data_.data() + (row0 + r) * cols_ + col0);
  }
  return Status::OK();
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return std::numeric_limits<double>::infinity();
  }
  double max_diff = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(data_[i] - other.data_[i]));
  }
  return max_diff;
}

bool Matrix::ApproxEquals(const Matrix& other, double tolerance) const {
  return MaxAbsDiff(other) <= tolerance;
}

double Matrix::Sum() const {
  double sum = 0.0;
  for (double v : data_) sum += v;
  return sum;
}

// Reference kernels (the pre-fast-path implementations). They live
// here, not in kernels.cc, so they are always compiled with the
// project's default flags and stay an honest benchmark baseline; the
// dispatching data::Multiply / data::Add / data::Transpose are in
// kernels.cc.
namespace naive {

Result<Matrix> Multiply(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument(StrFormat(
        "matmul inner dimension mismatch: %lldx%lld * %lldx%lld",
        static_cast<long long>(a.rows()), static_cast<long long>(a.cols()),
        static_cast<long long>(b.rows()), static_cast<long long>(b.cols())));
  }
  Matrix c(a.rows(), b.cols(), 0.0);
  // i-k-j loop order streams B and C rows, which keeps the inner loop
  // vectorizable.
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t k = 0; k < a.cols(); ++k) {
      const double aik = a.At(i, k);
      const double* b_row = b.data() + k * b.cols();
      double* c_row = c.data() + i * c.cols();
      for (int64_t j = 0; j < b.cols(); ++j) {
        c_row[j] += aik * b_row[j];
      }
    }
  }
  return c;
}

Result<Matrix> Add(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return Status::InvalidArgument(StrFormat(
        "add shape mismatch: %lldx%lld + %lldx%lld",
        static_cast<long long>(a.rows()), static_cast<long long>(a.cols()),
        static_cast<long long>(b.rows()), static_cast<long long>(b.cols())));
  }
  Matrix c(a.rows(), a.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = c.data();
  for (int64_t i = 0; i < a.size(); ++i) pc[i] = pa[i] + pb[i];
  return c;
}

Matrix Transpose(const Matrix& m) {
  Matrix out(m.cols(), m.rows());
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t c = 0; c < m.cols(); ++c) {
      out.At(c, r) = m.At(r, c);
    }
  }
  return out;
}

}  // namespace naive

}  // namespace taskbench::data
