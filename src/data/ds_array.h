#ifndef TASKBENCH_DATA_DS_ARRAY_H_
#define TASKBENCH_DATA_DS_ARRAY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "data/grid.h"
#include "data/matrix.h"

namespace taskbench::data {

/// A materialized distributed blocked array, the dislib `ds_array`
/// equivalent: a grid of dense float64 blocks. This is the object the
/// real (thread-pool) execution path computes on; the simulated path
/// only needs the GridSpec.
class DsArray {
 public:
  /// Splits a dense matrix into blocks of block_rows x block_cols.
  static Result<DsArray> FromMatrix(const Matrix& matrix, int64_t block_rows,
                                    int64_t block_cols);

  /// Creates the array by invoking `fill(extent, &block)` per block;
  /// blocks are pre-sized to the extent dimensions.
  static Result<DsArray> Generate(
      GridSpec spec,
      const std::function<void(const BlockExtent&, Matrix*)>& fill);

  /// A zero-initialized array with the given partitioning.
  static Result<DsArray> Zeros(GridSpec spec);

  const GridSpec& spec() const { return spec_; }
  int64_t grid_rows() const { return spec_.grid_rows(); }
  int64_t grid_cols() const { return spec_.grid_cols(); }
  int64_t num_blocks() const { return spec_.num_blocks(); }

  Matrix& block(int64_t bk, int64_t bl) {
    return blocks_[static_cast<size_t>(bk * spec_.grid_cols() + bl)];
  }
  const Matrix& block(int64_t bk, int64_t bl) const {
    return blocks_[static_cast<size_t>(bk * spec_.grid_cols() + bl)];
  }

  /// Reassembles the full dense matrix (tests/examples only; the
  /// result must fit in memory).
  Result<Matrix> Collect() const;

 private:
  explicit DsArray(GridSpec spec);

  GridSpec spec_;
  std::vector<Matrix> blocks_;
};

}  // namespace taskbench::data

#endif  // TASKBENCH_DATA_DS_ARRAY_H_
