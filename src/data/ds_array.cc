#include "data/ds_array.h"

#include <utility>

namespace taskbench::data {

DsArray::DsArray(GridSpec spec) : spec_(std::move(spec)) {
  blocks_.resize(static_cast<size_t>(spec_.num_blocks()));
}

Result<DsArray> DsArray::FromMatrix(const Matrix& matrix, int64_t block_rows,
                                    int64_t block_cols) {
  DatasetSpec dataset;
  dataset.name = "from-matrix";
  dataset.rows = matrix.rows();
  dataset.cols = matrix.cols();
  TB_ASSIGN_OR_RETURN(GridSpec spec,
                      GridSpec::Create(dataset, block_rows, block_cols));
  DsArray array(std::move(spec));
  for (int64_t bk = 0; bk < array.grid_rows(); ++bk) {
    for (int64_t bl = 0; bl < array.grid_cols(); ++bl) {
      const BlockExtent e = array.spec_.ExtentAt(bk, bl);
      TB_ASSIGN_OR_RETURN(array.block(bk, bl),
                          matrix.Slice(e.row0, e.col0, e.rows, e.cols));
    }
  }
  return array;
}

Result<DsArray> DsArray::Generate(
    GridSpec spec,
    const std::function<void(const BlockExtent&, Matrix*)>& fill) {
  DsArray array(std::move(spec));
  for (int64_t bk = 0; bk < array.grid_rows(); ++bk) {
    for (int64_t bl = 0; bl < array.grid_cols(); ++bl) {
      const BlockExtent e = array.spec_.ExtentAt(bk, bl);
      Matrix block(e.rows, e.cols);
      fill(e, &block);
      array.block(bk, bl) = std::move(block);
    }
  }
  return array;
}

Result<DsArray> DsArray::Zeros(GridSpec spec) {
  return Generate(std::move(spec), [](const BlockExtent&, Matrix*) {});
}

Result<Matrix> DsArray::Collect() const {
  Matrix out(spec_.dataset().rows, spec_.dataset().cols);
  for (int64_t bk = 0; bk < grid_rows(); ++bk) {
    for (int64_t bl = 0; bl < grid_cols(); ++bl) {
      const BlockExtent e = spec_.ExtentAt(bk, bl);
      TB_RETURN_IF_ERROR(out.AssignSlice(e.row0, e.col0, block(bk, bl)));
    }
  }
  return out;
}

}  // namespace taskbench::data
