#ifndef TASKBENCH_DATA_KERNELS_H_
#define TASKBENCH_DATA_KERNELS_H_

#include "common/result.h"
#include "data/matrix.h"

namespace taskbench::data {

/// Which implementation family the dispatching entry points
/// (data::Multiply / data::Add / data::Transpose) resolve to.
///
/// The real-execution path wants the fastest kernels the host can
/// run; the correctness tests and the kernel benchmark want to pin a
/// specific variant and compare the two. This is the kernel-dispatch
/// seam: algos call the dispatching functions and automatically pick
/// up the blocked variants, while callers that need a particular
/// implementation name it explicitly.
enum class KernelVariant {
  kNaive,    ///< reference loops (the pre-fast-path kernels)
  kBlocked,  ///< cache-blocked, register-tiled variants
};

/// Variant used by the dispatching entry points. Defaults to
/// kBlocked.
KernelVariant DefaultKernelVariant();

/// Overrides the dispatch default (benchmark / test seam). Safe to
/// call concurrently with kernel execution; in-flight kernels finish
/// on the variant they started with.
void SetDefaultKernelVariant(KernelVariant variant);

/// Reference implementations: the exact pre-fast-path loops. Kept as
/// the comparison baseline for the kernel correctness suite and the
/// speedup benchmark.
namespace naive {

/// C = A * B with the i-k-j streaming loop. Fails on inner-dimension
/// mismatch.
Result<Matrix> Multiply(const Matrix& a, const Matrix& b);

/// C = A + B elementwise. Fails on shape mismatch.
Result<Matrix> Add(const Matrix& a, const Matrix& b);

/// Row-by-row transpose.
Matrix Transpose(const Matrix& m);

}  // namespace naive

/// Fast implementations: cache-blocked and register-tiled, written so
/// the compiler's vectorizer produces FMA-friendly unrolled inner
/// loops (see docs/REAL_EXECUTION.md for the tile geometry).
namespace blocked {

/// C = A * B via packed-panel GEMM: B is repacked into contiguous
/// KC x NR slabs, A into KC x MR slabs, and an MR x NR register-tile
/// micro-kernel accumulates in registers across each K panel.
/// Summation order differs from naive::Multiply, so results agree to
/// rounding (not bit-exactly).
Result<Matrix> Multiply(const Matrix& a, const Matrix& b);

/// C = A + B with an unrolled streaming loop. Bit-identical to
/// naive::Add (addition order is unchanged).
Result<Matrix> Add(const Matrix& a, const Matrix& b);

/// Cache-blocked transpose (square tiles sized for L1). Bit-identical
/// to naive::Transpose.
Matrix Transpose(const Matrix& m);

}  // namespace blocked

}  // namespace taskbench::data

#endif  // TASKBENCH_DATA_KERNELS_H_
