#ifndef TASKBENCH_DATA_GENERATORS_H_
#define TASKBENCH_DATA_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "data/ds_array.h"
#include "data/grid.h"
#include "data/matrix.h"

namespace taskbench::data {

/// Synthetic dataset generators mirroring Section 4.4.5 (random
/// float64 NumPy arrays with a fixed random state) and Section 5.2.3
/// (skewed datasets). All generators are deterministic per seed; per
/// block the stream is derived from (seed, block index) so generation
/// order does not change the values.

/// Fills `m` with uniform values in [0, 1).
void FillUniform(Matrix* m, Rng* rng);

/// Fills `m` with the paper's skew construction: a uniform base with
/// `skew_fraction` of the elements relocated into narrow regions of
/// the value distribution, forcing dense groups of near-equal values.
/// skew_fraction = 0 reduces to FillUniform.
void FillSkewed(Matrix* m, Rng* rng, double skew_fraction);

/// Fills row vectors with a mixture of `num_centers` Gaussian blobs —
/// a realistic K-means input where each dataset row is one sample.
/// Center coordinates are drawn in [-10, 10] with unit-variance noise.
void FillGaussianBlobs(Matrix* m, Rng* rng, int num_centers);

/// Creates a blocked array of uniform random values.
Result<DsArray> UniformArray(const GridSpec& spec, uint64_t seed);

/// Creates a blocked array with the skewed distribution.
Result<DsArray> SkewedArray(const GridSpec& spec, uint64_t seed,
                            double skew_fraction);

/// Creates a blocked array of Gaussian-blob samples (K-means input).
Result<DsArray> BlobsArray(const GridSpec& spec, uint64_t seed,
                           int num_centers);

/// Catalog of the paper's dataset configurations (Sections 4.4.5 and
/// 5.4): exact dimensions for every Matmul and K-means input used in
/// the figures. Names follow the paper labels.
struct PaperDatasets {
  static DatasetSpec Matmul8GB();     ///< 32768 x 32768 (8 GiB)
  static DatasetSpec Matmul32GB();    ///< 65536 x 65536 (32 GiB)
  static DatasetSpec Matmul2GB();     ///< 16384 x 16384 (skew study)
  static DatasetSpec Matmul128MB();   ///< 4000 x 4000 (correlation extra)
  static DatasetSpec KMeans10GB();    ///< 12.5M samples x 100 features
  static DatasetSpec KMeans100GB();   ///< 125M samples x 100 features
  static DatasetSpec KMeans1GB();     ///< 1.25M samples x 100 (skew study)
  static DatasetSpec KMeans100MB();   ///< 125k samples x 100 (correlation)
};

}  // namespace taskbench::data

#endif  // TASKBENCH_DATA_GENERATORS_H_
