#include "data/generators.h"

#include <cmath>

namespace taskbench::data {

namespace {

/// Derives a block-local RNG from the dataset seed and block index so
/// the generated values are independent of generation order.
Rng BlockRng(uint64_t seed, const BlockExtent& extent) {
  const uint64_t mix = seed ^ (static_cast<uint64_t>(extent.row0) << 20) ^
                       (static_cast<uint64_t>(extent.col0) + 0x9e3779b9ULL);
  return Rng(mix);
}

}  // namespace

void FillUniform(Matrix* m, Rng* rng) {
  double* p = m->data();
  for (int64_t i = 0; i < m->size(); ++i) p[i] = rng->NextDouble();
}

void FillSkewed(Matrix* m, Rng* rng, double skew_fraction) {
  // The paper "moved 50% of the elements to certain regions of the
  // distribution forcing groups of elements" (Section 5.2.3). We pick
  // 4 narrow attractor regions; each skewed element lands in one of
  // them with small jitter.
  static constexpr double kRegions[] = {0.1, 0.35, 0.6, 0.85};
  static constexpr double kJitter = 0.01;
  double* p = m->data();
  for (int64_t i = 0; i < m->size(); ++i) {
    if (rng->NextDouble() < skew_fraction) {
      const double center = kRegions[rng->NextBounded(4)];
      p[i] = center + rng->Uniform(-kJitter, kJitter);
    } else {
      p[i] = rng->NextDouble();
    }
  }
}

void FillGaussianBlobs(Matrix* m, Rng* rng, int num_centers) {
  // Centers are derived from a fixed-seed stream independent of the
  // sample stream so every block sees the same centers.
  Rng center_rng(1234577);
  std::vector<double> centers(static_cast<size_t>(num_centers) *
                              static_cast<size_t>(m->cols()));
  for (auto& c : centers) c = center_rng.Uniform(-10.0, 10.0);

  for (int64_t r = 0; r < m->rows(); ++r) {
    const auto center =
        static_cast<size_t>(rng->NextBounded(static_cast<uint64_t>(num_centers)));
    for (int64_t c = 0; c < m->cols(); ++c) {
      m->At(r, c) = centers[center * static_cast<size_t>(m->cols()) +
                            static_cast<size_t>(c)] +
                    rng->NextGaussian();
    }
  }
}

Result<DsArray> UniformArray(const GridSpec& spec, uint64_t seed) {
  return DsArray::Generate(spec, [seed](const BlockExtent& e, Matrix* block) {
    Rng rng = BlockRng(seed, e);
    FillUniform(block, &rng);
  });
}

Result<DsArray> SkewedArray(const GridSpec& spec, uint64_t seed,
                            double skew_fraction) {
  return DsArray::Generate(
      spec, [seed, skew_fraction](const BlockExtent& e, Matrix* block) {
        Rng rng = BlockRng(seed, e);
        FillSkewed(block, &rng, skew_fraction);
      });
}

Result<DsArray> BlobsArray(const GridSpec& spec, uint64_t seed,
                           int num_centers) {
  return DsArray::Generate(
      spec, [seed, num_centers](const BlockExtent& e, Matrix* block) {
        Rng rng = BlockRng(seed, e);
        FillGaussianBlobs(block, &rng, num_centers);
      });
}

DatasetSpec PaperDatasets::Matmul8GB() {
  return DatasetSpec{"matmul-8gb", 32768, 32768};
}
DatasetSpec PaperDatasets::Matmul32GB() {
  return DatasetSpec{"matmul-32gb", 65536, 65536};
}
DatasetSpec PaperDatasets::Matmul2GB() {
  return DatasetSpec{"matmul-2gb", 16384, 16384};
}
DatasetSpec PaperDatasets::Matmul128MB() {
  return DatasetSpec{"matmul-128mb", 4000, 4000};
}
DatasetSpec PaperDatasets::KMeans10GB() {
  return DatasetSpec{"kmeans-10gb", 12500000, 100};
}
DatasetSpec PaperDatasets::KMeans100GB() {
  return DatasetSpec{"kmeans-100gb", 125000000, 100};
}
DatasetSpec PaperDatasets::KMeans1GB() {
  return DatasetSpec{"kmeans-1gb", 1250000, 100};
}
DatasetSpec PaperDatasets::KMeans100MB() {
  return DatasetSpec{"kmeans-100mb", 125000, 100};
}

}  // namespace taskbench::data
