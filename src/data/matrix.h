#ifndef TASKBENCH_DATA_MATRIX_H_
#define TASKBENCH_DATA_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace taskbench::data {

/// A dense row-major matrix of float64 values — the in-memory block
/// representation (the paper's datasets are NumPy float64 arrays,
/// Section 4.4.5).
class Matrix {
 public:
  /// An empty 0x0 matrix.
  Matrix() = default;
  /// A rows x cols matrix initialized to `fill`.
  Matrix(int64_t rows, int64_t cols, double fill = 0.0);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }
  /// Serialized size: float64 payload bytes.
  uint64_t bytes() const { return static_cast<uint64_t>(size()) * 8; }

  double& At(int64_t r, int64_t c) { return data_[r * cols_ + c]; }
  double At(int64_t r, int64_t c) const { return data_[r * cols_ + c]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Copies the [row0, row0+rows) x [col0, col0+cols) window.
  /// Fails when the window exceeds the matrix bounds.
  Result<Matrix> Slice(int64_t row0, int64_t col0, int64_t rows,
                       int64_t cols) const;

  /// Writes `block` at offset (row0, col0). Fails when out of bounds.
  Status AssignSlice(int64_t row0, int64_t col0, const Matrix& block);

  /// Element-wise maximum absolute difference; infinity on shape
  /// mismatch.
  double MaxAbsDiff(const Matrix& other) const;

  /// True when shapes match and all elements differ by <= tolerance.
  bool ApproxEquals(const Matrix& other, double tolerance = 1e-9) const;

  /// Sum of all elements (test/diagnostic helper).
  double Sum() const;

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B. Fails on inner-dimension mismatch. Dispatches to the
/// default kernel variant (see data/kernels.h); blocked unless
/// overridden.
Result<Matrix> Multiply(const Matrix& a, const Matrix& b);

/// C = A + B. Fails on shape mismatch. Dispatches like Multiply.
Result<Matrix> Add(const Matrix& a, const Matrix& b);

/// Transpose of `m`. Dispatches like Multiply.
Matrix Transpose(const Matrix& m);

}  // namespace taskbench::data

#endif  // TASKBENCH_DATA_MATRIX_H_
