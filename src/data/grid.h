#ifndef TASKBENCH_DATA_GRID_H_
#define TASKBENCH_DATA_GRID_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace taskbench::data {

/// Logical description of an input dataset D with i rows and j columns
/// of float64 elements (Section 3.5). Datasets in simulation mode are
/// described, not materialized, so the paper's 100 GB inputs cost
/// nothing to "create".
struct DatasetSpec {
  std::string name = "dataset";
  int64_t rows = 0;  ///< i
  int64_t cols = 0;  ///< j

  int64_t num_elements() const { return rows * cols; }
  uint64_t bytes() const { return static_cast<uint64_t>(num_elements()) * 8; }
};

/// Extent of one block within the dataset: offsets plus the actual
/// dimensions (edge blocks may be smaller when the block dimension
/// does not divide the dataset dimension).
struct BlockExtent {
  int64_t row0 = 0;
  int64_t col0 = 0;
  int64_t rows = 0;
  int64_t cols = 0;

  int64_t num_elements() const { return rows * cols; }
  uint64_t bytes() const { return static_cast<uint64_t>(num_elements()) * 8; }
};

/// The partitioning model of Section 3.5: dataset D(i x j) split into
/// blocks B(m x n) arranged in a grid G(k x l) with k = ceil(i/m) and
/// l = ceil(j/n) (Eq. 2; exact division in all paper configurations).
///
/// The block dimension is the task-granularity control knob: larger
/// blocks -> fewer, coarser tasks (more thread-level parallelism);
/// smaller blocks -> more, finer tasks (more task-level parallelism).
class GridSpec {
 public:
  /// Builds a grid for `dataset` with blocks of m x n elements.
  /// Fails when the block dimension is non-positive or exceeds the
  /// dataset dimension (the paper's second constraint, Section 3.5).
  static Result<GridSpec> Create(DatasetSpec dataset, int64_t block_rows,
                                 int64_t block_cols);

  /// Builds the grid from a target grid dimension k x l instead
  /// (the paper specifies experiments by grid dimension, e.g. "4x4").
  /// Block dims are ceil(i/k) x ceil(j/l).
  static Result<GridSpec> CreateFromGridDim(DatasetSpec dataset,
                                            int64_t grid_rows,
                                            int64_t grid_cols);

  const DatasetSpec& dataset() const { return dataset_; }
  int64_t block_rows() const { return block_rows_; }  ///< m
  int64_t block_cols() const { return block_cols_; }  ///< n
  int64_t grid_rows() const { return grid_rows_; }    ///< k
  int64_t grid_cols() const { return grid_cols_; }    ///< l
  int64_t num_blocks() const { return grid_rows_ * grid_cols_; }

  /// Extent of block (bk, bl); edge blocks may be ragged.
  BlockExtent ExtentAt(int64_t bk, int64_t bl) const;

  /// Bytes of a full (interior) block — the paper's "block size".
  uint64_t full_block_bytes() const {
    return static_cast<uint64_t>(block_rows_ * block_cols_) * 8;
  }

  /// "k x l" string, e.g. "16x16".
  std::string GridDimString() const;

 private:
  GridSpec(DatasetSpec dataset, int64_t block_rows, int64_t block_cols);

  DatasetSpec dataset_;
  int64_t block_rows_;
  int64_t block_cols_;
  int64_t grid_rows_;
  int64_t grid_cols_;
};

}  // namespace taskbench::data

#endif  // TASKBENCH_DATA_GRID_H_
