#ifndef TASKBENCH_STATS_REGRESSION_FOREST_H_
#define TASKBENCH_STATS_REGRESSION_FOREST_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "stats/regression_tree.h"

namespace taskbench::stats {

/// Hyper-parameters of a bagged regression forest.
struct RegressionForestOptions {
  int num_trees = 25;
  /// Bootstrap sample fraction per tree.
  double sample_fraction = 1.0;
  uint64_t seed = 42;
  RegressionTreeOptions tree;
};

/// A deterministic bagged ensemble of CART trees (bootstrap samples,
/// mean aggregation). Smooths the single tree's piecewise-constant
/// surface, cutting the tail error of the performance predictor.
class RegressionForest {
 public:
  static Result<RegressionForest> Fit(
      const std::vector<std::vector<double>>& rows,
      const std::vector<double>& targets,
      const RegressionForestOptions& options = {});

  /// Mean prediction across trees.
  Result<double> Predict(const std::vector<double>& features) const;

  size_t num_trees() const { return trees_.size(); }
  size_t num_features() const {
    return trees_.empty() ? 0 : trees_[0].num_features();
  }

  /// Mean of the member trees' importances (normalized to sum 1).
  std::vector<double> FeatureImportance() const;

 private:
  RegressionForest() = default;
  std::vector<RegressionTree> trees_;
};

}  // namespace taskbench::stats

#endif  // TASKBENCH_STATS_REGRESSION_FOREST_H_
