#ifndef TASKBENCH_STATS_REGRESSION_TREE_H_
#define TASKBENCH_STATS_REGRESSION_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace taskbench::stats {

/// Hyper-parameters of a CART regression tree.
struct RegressionTreeOptions {
  int max_depth = 10;
  int min_samples_leaf = 3;
  /// Stop splitting when a node's variance improvement falls below
  /// this fraction of the root variance.
  double min_variance_gain = 1e-4;
};

/// A deterministic CART regression tree (variance-reduction splits,
/// mean-value leaves). No external dependencies; used by the
/// performance predictor that implements the paper's Section 5.4.3
/// "put learning models into play" direction. Splits are invariant
/// under monotone feature transforms, which suits the heavy-tailed
/// factor features (byte counts, flop counts).
class RegressionTree {
 public:
  /// Fits a tree on `rows` (each a feature vector of equal length)
  /// against `targets`. Fails on empty or ragged input.
  static Result<RegressionTree> Fit(
      const std::vector<std::vector<double>>& rows,
      const std::vector<double>& targets,
      const RegressionTreeOptions& options = {});

  /// Predicted target for one feature vector. Must have the training
  /// feature count.
  Result<double> Predict(const std::vector<double>& features) const;

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_leaves() const;
  int depth() const;
  size_t num_features() const { return num_features_; }

  /// Mean relative importance of each feature: total variance
  /// reduction attributed to splits on it, normalized to sum 1 (all
  /// zeros for a single-leaf tree). The predictor surfaces this as
  /// "which factors matter", mirroring the paper's correlation view.
  std::vector<double> FeatureImportance() const;

 private:
  struct Node {
    bool leaf = true;
    double value = 0;       // leaf prediction
    int feature = -1;       // split feature
    double threshold = 0;   // go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    int node_depth = 0;
    double gain = 0;        // variance reduction of this split
  };

  RegressionTree() = default;

  int BuildNode(const std::vector<std::vector<double>>& rows,
                const std::vector<double>& targets,
                std::vector<int>& indices, int depth,
                const RegressionTreeOptions& options, double root_variance);

  std::vector<Node> nodes_;
  size_t num_features_ = 0;
};

}  // namespace taskbench::stats

#endif  // TASKBENCH_STATS_REGRESSION_TREE_H_
