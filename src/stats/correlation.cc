#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/strings.h"

namespace taskbench::stats {

std::vector<double> Ranks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });

  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    // Find the tie group [i, j).
    size_t j = i + 1;
    while (j < n && values[order[j]] == values[order[i]]) ++j;
    // Average 1-based rank of the group.
    const double avg_rank = (static_cast<double>(i + 1) +
                             static_cast<double>(j)) / 2.0;
    for (size_t p = i; p < j; ++p) ranks[order[p]] = avg_rank;
    i = j;
  }
  return ranks;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0;
  double sum = 0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0;
  const double mean = Mean(values);
  double ss = 0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values.size()));
}

Result<double> PearsonR(const std::vector<double>& x,
                        const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument(
        StrFormat("correlation length mismatch: %zu vs %zu", x.size(),
                  y.size()));
  }
  if (x.size() < 2) {
    return Status::InvalidArgument("correlation needs >= 2 points");
  }
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0 || syy == 0) {
    // Constant input: correlation undefined.
    return std::numeric_limits<double>::quiet_NaN();
  }
  return sxy / std::sqrt(sxx * syy);
}

Result<double> SpearmanRho(const std::vector<double>& x,
                           const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument(
        StrFormat("correlation length mismatch: %zu vs %zu", x.size(),
                  y.size()));
  }
  return PearsonR(Ranks(x), Ranks(y));
}

}  // namespace taskbench::stats
