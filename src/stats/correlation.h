#ifndef TASKBENCH_STATS_CORRELATION_H_
#define TASKBENCH_STATS_CORRELATION_H_

#include <vector>

#include "common/result.h"

namespace taskbench::stats {

/// Fractional ranks of `values` (1-based, ties receive the average of
/// their positions) — the ranking underlying Spearman correlation.
std::vector<double> Ranks(const std::vector<double>& values);

/// Pearson product-moment correlation of two equal-length vectors.
/// Fails on length mismatch or fewer than 2 points; returns NaN when
/// either vector is constant (undefined correlation).
Result<double> PearsonR(const std::vector<double>& x,
                        const std::vector<double>& y);

/// Spearman rank correlation (Pearson on the ranks) — the measure the
/// paper picks for its factor analysis because of its robustness to
/// non-linear relationships (Section 5.4).
Result<double> SpearmanRho(const std::vector<double>& x,
                           const std::vector<double>& y);

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& values);

/// Population standard deviation; 0 for fewer than 2 values.
double StdDev(const std::vector<double>& values);

}  // namespace taskbench::stats

#endif  // TASKBENCH_STATS_CORRELATION_H_
