#include "stats/regression_forest.h"

#include <algorithm>

#include "common/random.h"
#include "common/strings.h"

namespace taskbench::stats {

Result<RegressionForest> RegressionForest::Fit(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& targets,
    const RegressionForestOptions& options) {
  if (options.num_trees < 1) {
    return Status::InvalidArgument("num_trees must be >= 1");
  }
  if (options.sample_fraction <= 0 || options.sample_fraction > 1) {
    return Status::InvalidArgument("sample_fraction must be in (0, 1]");
  }
  if (rows.empty() || rows.size() != targets.size()) {
    return Status::InvalidArgument("rows/targets mismatch");
  }

  RegressionForest forest;
  Rng rng(options.seed);
  const size_t draw = std::max<size_t>(
      1, static_cast<size_t>(options.sample_fraction *
                             static_cast<double>(rows.size())));
  for (int t = 0; t < options.num_trees; ++t) {
    std::vector<std::vector<double>> sample_rows;
    std::vector<double> sample_targets;
    sample_rows.reserve(draw);
    sample_targets.reserve(draw);
    for (size_t i = 0; i < draw; ++i) {
      const size_t pick = rng.NextBounded(rows.size());
      sample_rows.push_back(rows[pick]);
      sample_targets.push_back(targets[pick]);
    }
    TB_ASSIGN_OR_RETURN(
        RegressionTree tree,
        RegressionTree::Fit(sample_rows, sample_targets, options.tree));
    forest.trees_.push_back(std::move(tree));
  }
  return forest;
}

Result<double> RegressionForest::Predict(
    const std::vector<double>& features) const {
  if (trees_.empty()) {
    return Status::FailedPrecondition("forest is not fitted");
  }
  double sum = 0;
  for (const RegressionTree& tree : trees_) {
    TB_ASSIGN_OR_RETURN(const double y, tree.Predict(features));
    sum += y;
  }
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> RegressionForest::FeatureImportance() const {
  std::vector<double> total(num_features(), 0.0);
  for (const RegressionTree& tree : trees_) {
    const auto importance = tree.FeatureImportance();
    for (size_t f = 0; f < total.size(); ++f) total[f] += importance[f];
  }
  double sum = 0;
  for (double v : total) sum += v;
  if (sum > 0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

}  // namespace taskbench::stats
