#ifndef TASKBENCH_STATS_FEATURE_TABLE_H_
#define TASKBENCH_STATS_FEATURE_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace taskbench::stats {

/// A pairwise correlation matrix over named features.
struct CorrelationMatrix {
  std::vector<std::string> names;
  /// values[i][j] = correlation(feature i, feature j); NaN for
  /// undefined pairs (constant features).
  std::vector<std::vector<double>> values;

  /// Correlation of the named pair; fails when a name is unknown.
  Result<double> At(const std::string& a, const std::string& b) const;

  /// Fixed-width text rendering (Figure 11 style).
  std::string ToString(int cell_width = 7) const;
};

/// A columnar table of experiment features — the input of the
/// correlation analysis (Section 5.4). Categorical features are
/// one-hot encoded exactly as the paper does (processor type, storage
/// architecture and scheduling policy each expand into one column per
/// category).
class FeatureTable {
 public:
  FeatureTable() = default;

  /// Adds a numeric feature column. All columns must have equal
  /// length; the first added column fixes it.
  Status AddNumeric(const std::string& name, std::vector<double> values);

  /// One-hot encodes a categorical feature: for each distinct
  /// category c (in order of first appearance) a column "name=c"
  /// holding 0/1.
  Status AddCategorical(const std::string& name,
                        const std::vector<std::string>& values);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

  /// The column values for `name`; fails when unknown.
  Result<std::vector<double>> Column(const std::string& name) const;

  /// Removes constant columns (their correlation is undefined; the
  /// paper drops DAG max height and the algorithm-specific parameter
  /// for this reason in Figure 11). Returns the dropped names.
  std::vector<std::string> DropConstantColumns();

  /// Full pairwise Spearman matrix.
  Result<CorrelationMatrix> SpearmanMatrix() const;

  /// Full pairwise Pearson matrix.
  Result<CorrelationMatrix> PearsonMatrix() const;

 private:
  Result<CorrelationMatrix> BuildMatrix(bool spearman) const;

  std::vector<std::string> names_;
  std::vector<std::vector<double>> columns_;
  size_t num_rows_ = 0;
  bool has_rows_ = false;
};

}  // namespace taskbench::stats

#endif  // TASKBENCH_STATS_FEATURE_TABLE_H_
