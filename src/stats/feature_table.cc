#include "stats/feature_table.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/strings.h"
#include "stats/correlation.h"

namespace taskbench::stats {

Result<double> CorrelationMatrix::At(const std::string& a,
                                     const std::string& b) const {
  auto index_of = [this](const std::string& name) -> int {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<int>(i);
    }
    return -1;
  };
  const int ia = index_of(a);
  const int ib = index_of(b);
  if (ia < 0 || ib < 0) {
    return Status::NotFound(StrFormat(
        "unknown feature '%s'", (ia < 0 ? a : b).c_str()));
  }
  return values[static_cast<size_t>(ia)][static_cast<size_t>(ib)];
}

std::string CorrelationMatrix::ToString(int cell_width) const {
  std::ostringstream out;
  size_t label_width = 0;
  for (const auto& name : names) {
    label_width = std::max(label_width, name.size());
  }
  out << std::string(label_width, ' ');
  for (size_t j = 0; j < names.size(); ++j) {
    std::string head = names[j].substr(0, static_cast<size_t>(cell_width - 1));
    out << PadLeft(head, static_cast<size_t>(cell_width));
  }
  out << "\n";
  for (size_t i = 0; i < names.size(); ++i) {
    out << PadRight(names[i], label_width);
    for (size_t j = 0; j < names.size(); ++j) {
      const double v = values[i][j];
      out << PadLeft(std::isnan(v) ? "--" : StrFormat("%.3f", v),
                     static_cast<size_t>(cell_width));
    }
    out << "\n";
  }
  return out.str();
}

Status FeatureTable::AddNumeric(const std::string& name,
                                std::vector<double> values) {
  if (has_rows_ && values.size() != num_rows_) {
    return Status::InvalidArgument(StrFormat(
        "column '%s' has %zu rows, table has %zu", name.c_str(),
        values.size(), num_rows_));
  }
  for (const std::string& existing : names_) {
    if (existing == name) {
      return Status::AlreadyExists(
          StrFormat("column '%s' already present", name.c_str()));
    }
  }
  num_rows_ = values.size();
  has_rows_ = true;
  names_.push_back(name);
  columns_.push_back(std::move(values));
  return Status::OK();
}

Status FeatureTable::AddCategorical(const std::string& name,
                                    const std::vector<std::string>& values) {
  if (has_rows_ && values.size() != num_rows_) {
    return Status::InvalidArgument(StrFormat(
        "column '%s' has %zu rows, table has %zu", name.c_str(),
        values.size(), num_rows_));
  }
  // Categories in order of first appearance, for stable column order.
  std::vector<std::string> categories;
  for (const std::string& v : values) {
    bool seen = false;
    for (const std::string& c : categories) {
      if (c == v) {
        seen = true;
        break;
      }
    }
    if (!seen) categories.push_back(v);
  }
  for (const std::string& category : categories) {
    std::vector<double> column(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      column[i] = values[i] == category ? 1.0 : 0.0;
    }
    TB_RETURN_IF_ERROR(AddNumeric(name + "=" + category, std::move(column)));
  }
  return Status::OK();
}

Result<std::vector<double>> FeatureTable::Column(
    const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return columns_[i];
  }
  return Status::NotFound(StrFormat("unknown column '%s'", name.c_str()));
}

std::vector<std::string> FeatureTable::DropConstantColumns() {
  std::vector<std::string> dropped;
  size_t kept = 0;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const bool constant =
        columns_[i].empty() ||
        std::all_of(columns_[i].begin(), columns_[i].end(),
                    [&](double v) { return v == columns_[i][0]; });
    if (constant) {
      dropped.push_back(names_[i]);
    } else {
      if (kept != i) {
        names_[kept] = std::move(names_[i]);
        columns_[kept] = std::move(columns_[i]);
      }
      ++kept;
    }
  }
  names_.resize(kept);
  columns_.resize(kept);
  return dropped;
}

Result<CorrelationMatrix> FeatureTable::BuildMatrix(bool spearman) const {
  if (num_rows_ < 2) {
    return Status::FailedPrecondition(
        "correlation matrix needs >= 2 samples");
  }
  CorrelationMatrix matrix;
  matrix.names = names_;
  const size_t n = names_.size();

  // Pre-rank once per column for Spearman.
  std::vector<std::vector<double>> basis;
  basis.reserve(n);
  for (const auto& column : columns_) {
    basis.push_back(spearman ? Ranks(column) : column);
  }

  matrix.values.assign(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      TB_ASSIGN_OR_RETURN(const double rho, PearsonR(basis[i], basis[j]));
      matrix.values[i][j] = rho;
      matrix.values[j][i] = rho;
    }
  }
  return matrix;
}

Result<CorrelationMatrix> FeatureTable::SpearmanMatrix() const {
  return BuildMatrix(/*spearman=*/true);
}

Result<CorrelationMatrix> FeatureTable::PearsonMatrix() const {
  return BuildMatrix(/*spearman=*/false);
}

}  // namespace taskbench::stats
