#include "stats/regression_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/strings.h"

namespace taskbench::stats {

namespace {

/// Mean and variance*count (sum of squared deviations) of the
/// targets selected by `indices`.
void Moments(const std::vector<double>& targets,
             const std::vector<int>& indices, double* mean, double* ss) {
  double sum = 0;
  for (int i : indices) sum += targets[static_cast<size_t>(i)];
  *mean = sum / static_cast<double>(indices.size());
  double acc = 0;
  for (int i : indices) {
    const double d = targets[static_cast<size_t>(i)] - *mean;
    acc += d * d;
  }
  *ss = acc;
}

}  // namespace

Result<RegressionTree> RegressionTree::Fit(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& targets,
    const RegressionTreeOptions& options) {
  if (rows.empty() || rows.size() != targets.size()) {
    return Status::InvalidArgument(StrFormat(
        "tree needs equal non-zero rows/targets, got %zu/%zu", rows.size(),
        targets.size()));
  }
  const size_t features = rows[0].size();
  if (features == 0) {
    return Status::InvalidArgument("rows need at least one feature");
  }
  for (const auto& row : rows) {
    if (row.size() != features) {
      return Status::InvalidArgument("ragged feature rows");
    }
  }
  if (options.max_depth < 0 || options.min_samples_leaf < 1) {
    return Status::InvalidArgument("invalid tree options");
  }

  RegressionTree tree;
  tree.num_features_ = features;
  std::vector<int> indices(rows.size());
  std::iota(indices.begin(), indices.end(), 0);
  double root_mean = 0, root_ss = 0;
  Moments(targets, indices, &root_mean, &root_ss);
  tree.BuildNode(rows, targets, indices, 0, options,
                 std::max(root_ss, 1e-30));
  return tree;
}

int RegressionTree::BuildNode(const std::vector<std::vector<double>>& rows,
                              const std::vector<double>& targets,
                              std::vector<int>& indices, int depth,
                              const RegressionTreeOptions& options,
                              double root_variance) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  double mean = 0, ss = 0;
  Moments(targets, indices, &mean, &ss);
  nodes_[static_cast<size_t>(node_id)].value = mean;
  nodes_[static_cast<size_t>(node_id)].node_depth = depth;

  const int n = static_cast<int>(indices.size());
  if (depth >= options.max_depth || n < 2 * options.min_samples_leaf ||
      ss <= 0) {
    return node_id;
  }

  // Best (feature, threshold) by variance reduction, scanned with
  // prefix sums over the sorted column.
  double best_gain = 0;
  int best_feature = -1;
  double best_threshold = 0;
  std::vector<int> sorted = indices;
  for (size_t f = 0; f < num_features_; ++f) {
    std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
      const double va = rows[static_cast<size_t>(a)][f];
      const double vb = rows[static_cast<size_t>(b)][f];
      if (va != vb) return va < vb;
      return a < b;  // stable tie-break keeps fits deterministic
    });
    double left_sum = 0, left_sq = 0;
    double total_sum = 0, total_sq = 0;
    for (int i : sorted) {
      const double y = targets[static_cast<size_t>(i)];
      total_sum += y;
      total_sq += y * y;
    }
    for (int k = 0; k < n - 1; ++k) {
      const double y = targets[static_cast<size_t>(sorted[static_cast<size_t>(k)])];
      left_sum += y;
      left_sq += y * y;
      const double x_here =
          rows[static_cast<size_t>(sorted[static_cast<size_t>(k)])][f];
      const double x_next =
          rows[static_cast<size_t>(sorted[static_cast<size_t>(k + 1)])][f];
      if (x_here == x_next) continue;  // cannot split between equals
      const int left_n = k + 1;
      const int right_n = n - left_n;
      if (left_n < options.min_samples_leaf ||
          right_n < options.min_samples_leaf) {
        continue;
      }
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double left_ss = left_sq - left_sum * left_sum / left_n;
      const double right_ss = right_sq - right_sum * right_sum / right_n;
      const double gain = ss - (left_ss + right_ss);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = (x_here + x_next) / 2.0;
      }
    }
  }

  if (best_feature < 0 || best_gain < options.min_variance_gain * root_variance) {
    return node_id;
  }

  std::vector<int> left_idx, right_idx;
  for (int i : indices) {
    if (rows[static_cast<size_t>(i)][static_cast<size_t>(best_feature)] <=
        best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  // Defensive: both sides non-empty by construction of the scan.
  if (left_idx.empty() || right_idx.empty()) return node_id;

  const int left_child =
      BuildNode(rows, targets, left_idx, depth + 1, options, root_variance);
  const int right_child =
      BuildNode(rows, targets, right_idx, depth + 1, options, root_variance);
  Node& node = nodes_[static_cast<size_t>(node_id)];
  node.leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left_child;
  node.right = right_child;
  node.gain = best_gain;
  return node_id;
}

Result<double> RegressionTree::Predict(
    const std::vector<double>& features) const {
  if (features.size() != num_features_) {
    return Status::InvalidArgument(StrFormat(
        "expected %zu features, got %zu", num_features_, features.size()));
  }
  if (nodes_.empty()) {
    return Status::FailedPrecondition("tree is not fitted");
  }
  int node = 0;
  while (!nodes_[static_cast<size_t>(node)].leaf) {
    const Node& n = nodes_[static_cast<size_t>(node)];
    node = features[static_cast<size_t>(n.feature)] <= n.threshold ? n.left
                                                                   : n.right;
  }
  return nodes_[static_cast<size_t>(node)].value;
}

size_t RegressionTree::num_leaves() const {
  size_t leaves = 0;
  for (const Node& node : nodes_) {
    if (node.leaf) ++leaves;
  }
  return leaves;
}

int RegressionTree::depth() const {
  int max_depth = 0;
  for (const Node& node : nodes_) {
    max_depth = std::max(max_depth, node.node_depth);
  }
  return max_depth;
}

std::vector<double> RegressionTree::FeatureImportance() const {
  std::vector<double> importance(num_features_, 0.0);
  double total = 0;
  for (const Node& node : nodes_) {
    if (!node.leaf) {
      importance[static_cast<size_t>(node.feature)] += node.gain;
      total += node.gain;
    }
  }
  if (total > 0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

}  // namespace taskbench::stats
