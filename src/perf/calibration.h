#ifndef TASKBENCH_PERF_CALIBRATION_H_
#define TASKBENCH_PERF_CALIBRATION_H_

namespace taskbench::perf::calib {

/// Calibration constants of the algorithm cost descriptors.
///
/// Each constant is anchored to a target the paper reports; the
/// hardware-side constants live in hw::device_profiles. EXPERIMENTS.md
/// records the paper-vs-measured outcome for every figure.
///
/// Anchors:
///  - Figure 1 (K-means 10 GB, 256 tasks): parallel-fraction speedup
///    5.69x, user-code speedup 1.24x, parallel-tasks speedup -1.20x.
///  - Figure 8 (Matmul 8 GB): matmul_func user-code speedup rises to
///    ~21x with block size; add_func stays below 1x at all sizes.
///  - Figure 9a (K-means clusters): user-code speedups ~1.2-1.5x at
///    10 clusters, ~2x that at 100, up to ~7x higher at 1000.

// ---- Matmul (dislib _matmul_func / _add_func, Section 4.4.4) ----

/// matmul_func performs 2*N^3 flops on an NxN block (multiply-add).
inline constexpr double kMatmulFlopsPerMac = 2.0;

/// GPU utilization ramp of the DGEMM-like kernel: util = 0.27 at
/// N=2048 (32 MB blocks, ~6x user speedup) and 0.95 at N=16384
/// (2048 MB blocks, ~21x), matching the Figure 8 growth.
inline constexpr double kMatmulGpuRampWork = 8.2e10;
inline constexpr double kMatmulGpuAlpha = 0.63;

/// The FMA variant (Figure 12) maps to a slightly less efficient
/// kernel but follows the same trends.
inline constexpr double kMatmulFmaPeakFraction = 0.90;

/// add_func touches 3 blocks (two reads, one write) per element pair;
/// 1 flop per element: memory-bound everywhere.
inline constexpr double kAddFlopsPerElement = 1.0;

/// Matmul GPU working set: two input blocks + one output block (the
/// paper's "3 x block size", Section 5.3) times a temporaries margin.
/// 3.3 x 8192 MB = 26 GB > 12 GB reproduces the OOM wall at the
/// maximum block size while 3.3 x 2048 MB = 6.6 GB still fits.
inline constexpr double kMatmulOomTempMargin = 1.1;

// ---- K-means (dislib _partial_sum, Section 4.4.4) ----

/// Parallel fraction: K distance passes streaming the M x N block
/// (8*M*N*K bytes, 2*M*N*K flops). Note: the paper states
/// O(M*N*K^2) complexity for partial_sum, but its own measured
/// times (Figure 9a) grow ~10x per 10x clusters, i.e. linearly in K;
/// we model the measured behaviour. See EXPERIMENTS.md.
inline constexpr double kKmeansParallelBytesPerElementPerCluster = 8.0;
inline constexpr double kKmeansParallelFlopsPerElementPerCluster = 2.0;

/// Serial fraction: interpreter-bound bookkeeping proportional to the
/// block volume. The factor (in units of one 8-byte stream over the
/// block) is pinned by Figure 1: with parallel-fraction speedup 5.69x
/// the user-code speedup is only 1.24x, which requires the serial
/// fraction to be ~2.6x the CPU parallel fraction at K=10.
inline constexpr double kKmeansSerialStreamFactor = 26.0;

/// K-means kernels are a sequence of CuPy ops with temporaries; their
/// effective GPU throughput tops out at ~34 GB/s on the Figure 1
/// configuration (5.69x over one core's 6 GB/s).
inline constexpr double kKmeansGpuPeakFraction = 0.344;
inline constexpr double kKmeansGpuRampWork = 1.8e8;
inline constexpr double kKmeansGpuAlpha = 0.63;
inline constexpr int kKmeansKernelLaunches = 8;

/// K-means GPU working set: the block (plus CuPy temporaries) and the
/// M x K distance matrix. Produces the OOM walls of Figures 7b/9a:
/// a single 10 GB block OOMs at 10 clusters (1.25 x 10e9 + 1e9 >
/// 12 GiB), 1000 clusters OOM from 1250 MB blocks on, while the
/// 100 GB dataset still fits at 16x1 (6.25 GB blocks).
inline constexpr double kKmeansOomBlockFactor = 1.25;

}  // namespace taskbench::perf::calib

#endif  // TASKBENCH_PERF_CALIBRATION_H_
