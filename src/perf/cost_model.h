#ifndef TASKBENCH_PERF_COST_MODEL_H_
#define TASKBENCH_PERF_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "hw/cluster.h"
#include "perf/task_cost.h"

namespace taskbench::perf {

/// Per-stage durations of one task execution, matching the metric
/// decomposition of Section 4.2. All values in seconds.
struct StageTimes {
  double deserialize = 0;
  double serial_fraction = 0;
  double parallel_fraction = 0;
  double cpu_gpu_comm = 0;  ///< zero for CPU execution
  double serialize = 0;

  /// The paper's "user code execution time": serial + parallel +
  /// CPU-GPU communication (excludes data movement to/from storage).
  double user_code() const {
    return serial_fraction + parallel_fraction + cpu_gpu_comm;
  }
  /// Full task latency including (de)serialization.
  double total() const { return deserialize + user_code() + serialize; }

  StageTimes& operator+=(const StageTimes& other);
  StageTimes operator/(double divisor) const;
};

/// Analytic cost model mapping TaskCost descriptors onto a cluster's
/// device profiles. The compute stages (serial fraction, parallel
/// fraction, CPU-GPU communication) are deterministic per task; the
/// I/O stages additionally suffer storage contention, which the
/// simulated executor models with shared-bandwidth resources — the
/// estimates here assume an uncontended stream (useful for the
/// single-task analyses of Sections 5.1-5.2).
class CostModel {
 public:
  explicit CostModel(hw::ClusterSpec spec);

  const hw::ClusterSpec& cluster() const { return spec_; }

  /// Duration of the parallel fraction on one CPU core.
  double CpuParallelFraction(const TaskCost& cost) const;

  /// Duration of the parallel fraction on one GPU device (kernel
  /// launches + roofline at the task's effective utilization).
  /// Does not check memory fit; see CheckGpuFit.
  double GpuParallelFraction(const TaskCost& cost) const;

  /// Duration of the serial fraction (always on a CPU core).
  double SerialFraction(const TaskCost& cost) const;

  /// CPU-GPU communication time over the cluster bus.
  double CpuGpuComm(const TaskCost& cost) const;

  /// Uncontended deserialization / serialization times through the
  /// given storage architecture (per-stream bandwidth + per-op
  /// latency).
  double Deserialize(const TaskCost& cost,
                     hw::StorageArchitecture arch) const;
  double Serialize(const TaskCost& cost, hw::StorageArchitecture arch) const;

  /// OutOfMemory when the task's working set exceeds GPU memory —
  /// the paper's "GPU OOM" configurations.
  Status CheckGpuFit(const TaskCost& cost) const;

  /// All stages for an execution on `processor`, assuming uncontended
  /// storage `arch`. Fails with OutOfMemory for unfittable GPU tasks.
  Result<StageTimes> EstimateStages(const TaskCost& cost,
                                    Processor processor,
                                    hw::StorageArchitecture arch) const;

 private:
  double DiskStreamTime(uint64_t bytes, hw::StorageArchitecture arch) const;

  hw::ClusterSpec spec_;
};

}  // namespace taskbench::perf

#endif  // TASKBENCH_PERF_COST_MODEL_H_
