#include "perf/cost_model.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace taskbench::perf {

double GpuCurve::UtilizationFor(double work) const {
  if (ramp_work <= 0 || work <= 0) return 1.0;
  return 1.0 / (1.0 + std::pow(ramp_work / work, alpha));
}

StageTimes& StageTimes::operator+=(const StageTimes& other) {
  deserialize += other.deserialize;
  serial_fraction += other.serial_fraction;
  parallel_fraction += other.parallel_fraction;
  cpu_gpu_comm += other.cpu_gpu_comm;
  serialize += other.serialize;
  return *this;
}

StageTimes StageTimes::operator/(double divisor) const {
  StageTimes out = *this;
  out.deserialize /= divisor;
  out.serial_fraction /= divisor;
  out.parallel_fraction /= divisor;
  out.cpu_gpu_comm /= divisor;
  out.serialize /= divisor;
  return out;
}

CostModel::CostModel(hw::ClusterSpec spec) : spec_(std::move(spec)) {
  TB_CHECK_OK(spec_.Validate());
}

namespace {
/// Roofline time of `work` on rates (flop_rate, mem_bw).
double RooflineTime(const DeviceWork& work, double flop_rate, double mem_bw) {
  return std::max(work.flops / flop_rate, work.bytes / mem_bw);
}
}  // namespace

double CostModel::CpuParallelFraction(const TaskCost& cost) const {
  return RooflineTime(cost.parallel, spec_.cpu_core.flops_per_s,
                      spec_.cpu_core.mem_bw_bps);
}

double CostModel::GpuParallelFraction(const TaskCost& cost) const {
  const double util =
      cost.gpu_curve.UtilizationFor(cost.parallel.Magnitude());
  const double eff = cost.gpu_curve.peak_fraction * util;
  const double launch =
      cost.num_kernels * spec_.gpu.kernel_launch_s;
  return launch + RooflineTime(cost.parallel, spec_.gpu.flops_per_s * eff,
                               spec_.gpu.mem_bw_bps * eff);
}

double CostModel::SerialFraction(const TaskCost& cost) const {
  return RooflineTime(cost.serial, spec_.cpu_core.flops_per_s,
                      spec_.cpu_core.mem_bw_bps);
}

double CostModel::CpuGpuComm(const TaskCost& cost) const {
  const double volume = static_cast<double>(cost.h2d_bytes + cost.d2h_bytes);
  return cost.num_transfers * spec_.bus.latency_s +
         volume / spec_.bus.bandwidth_bps;
}

double CostModel::DiskStreamTime(uint64_t bytes,
                                 hw::StorageArchitecture arch) const {
  const hw::DiskProfile& disk = arch == hw::StorageArchitecture::kLocalDisk
                                    ? spec_.local_disk
                                    : spec_.shared_disk;
  const double bw =
      std::min(disk.per_stream_bw_bps, disk.aggregate_bw_bps);
  return disk.per_op_latency_s + static_cast<double>(bytes) / bw;
}

double CostModel::Deserialize(const TaskCost& cost,
                              hw::StorageArchitecture arch) const {
  if (cost.input_bytes == 0) return 0;
  return DiskStreamTime(cost.input_bytes, arch);
}

double CostModel::Serialize(const TaskCost& cost,
                            hw::StorageArchitecture arch) const {
  if (cost.output_bytes == 0) return 0;
  return DiskStreamTime(cost.output_bytes, arch);
}

Status CostModel::CheckGpuFit(const TaskCost& cost) const {
  if (spec_.total_gpus() == 0) {
    return Status::FailedPrecondition("cluster has no GPU devices");
  }
  if (cost.gpu_working_set_bytes > spec_.gpu.memory_bytes) {
    return Status::OutOfMemory(StrFormat(
        "GPU OOM: task working set %s exceeds device memory %s",
        HumanBytes(cost.gpu_working_set_bytes).c_str(),
        HumanBytes(spec_.gpu.memory_bytes).c_str()));
  }
  return Status::OK();
}

Result<StageTimes> CostModel::EstimateStages(
    const TaskCost& cost, Processor processor,
    hw::StorageArchitecture arch) const {
  StageTimes stages;
  stages.deserialize = Deserialize(cost, arch);
  stages.serialize = Serialize(cost, arch);
  stages.serial_fraction = SerialFraction(cost);
  if (processor == Processor::kCpu) {
    stages.parallel_fraction = CpuParallelFraction(cost);
    stages.cpu_gpu_comm = 0;
  } else {
    TB_RETURN_IF_ERROR(CheckGpuFit(cost));
    stages.parallel_fraction = GpuParallelFraction(cost);
    stages.cpu_gpu_comm = CpuGpuComm(cost);
  }
  return stages;
}

}  // namespace taskbench::perf
