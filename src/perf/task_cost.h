#ifndef TASKBENCH_PERF_TASK_COST_H_
#define TASKBENCH_PERF_TASK_COST_H_

#include <cstdint>

namespace taskbench::perf {

/// Work performed by one code fraction, in roofline terms: a compute
/// side (flops) and a memory side (bytes streamed). The fraction's
/// runtime on a device is max(flops/flop_rate, bytes/mem_bw).
struct DeviceWork {
  double flops = 0;
  double bytes = 0;

  /// Scalar "work size" used by the GPU utilization ramp: the
  /// dominant roofline side.
  double Magnitude() const { return flops > bytes ? flops : bytes; }
};

/// Empirical GPU efficiency curve for one task type's kernels.
///
/// Effective GPU throughput = profile rate * peak_fraction * util(W)
/// with util(W) = 1 / (1 + (ramp_work / W)^alpha) and W the work
/// magnitude. This captures two effects the paper measures:
/// (1) small kernels underutilize the device (speedups grow with
/// block size, Figure 8), and (2) kernels that map to many small
/// library calls (dislib's K-means via CuPy) never reach the peak a
/// single DGEMM reaches (peak_fraction < 1).
struct GpuCurve {
  double peak_fraction = 1.0;
  double ramp_work = 0.0;  ///< W at which utilization is 0.5; 0 = no ramp.
  double alpha = 0.63;

  double UtilizationFor(double work) const;
};

/// Complete cost descriptor of one task instance, produced by the
/// algorithm layer and consumed by the cost model / simulated
/// executor. Mirrors the paper's task processing stages (Figure 4).
struct TaskCost {
  /// Thread-parallelizable fraction (runs on GPU when accelerated).
  DeviceWork parallel;
  /// Serial fraction — always executes on a CPU core (Section 3.3).
  DeviceWork serial;

  /// Host-to-device / device-to-host volumes for the CPU-GPU
  /// communication stage (GPU execution only).
  uint64_t h2d_bytes = 0;
  uint64_t d2h_bytes = 0;
  /// Number of discrete transfers (each pays the bus latency).
  int num_transfers = 0;
  /// Kernel launches (each pays the launch overhead).
  int num_kernels = 1;

  /// Deserialization / serialization volumes (storage I/O stages).
  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;

  /// Device-memory working set; exceeding the GPU capacity is OOM.
  uint64_t gpu_working_set_bytes = 0;

  /// GPU efficiency curve for this task type.
  GpuCurve gpu_curve;
};

}  // namespace taskbench::perf

#endif  // TASKBENCH_PERF_TASK_COST_H_
