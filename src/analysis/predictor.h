#ifndef TASKBENCH_ANALYSIS_PREDICTOR_H_
#define TASKBENCH_ANALYSIS_PREDICTOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/experiment.h"
#include "common/result.h"
#include "stats/regression_forest.h"
#include "stats/regression_tree.h"

namespace taskbench::analysis {

/// The learned performance model the paper proposes as future work
/// (Section 5.4.3): a regression tree trained on executed experiments
/// that predicts the parallel-task execution time of an *unseen*
/// configuration from its cheap structural features — block size,
/// grid dimension, parallel fraction, computational complexity, DAG
/// shape, dataset size and the one-hot resource/system factors — so
/// block-size and processor choices no longer require exhaustive
/// reruns.
class PerformancePredictor {
 public:
  /// Trains a single CART tree on executed samples (OOM samples are
  /// skipped — they carry no time). Targets are fitted in log space:
  /// factor effects are multiplicative and errors are judged
  /// relatively.
  static Result<PerformancePredictor> Train(
      const std::vector<ExperimentResult>& samples,
      const stats::RegressionTreeOptions& options = {});

  /// Trains a bagged forest instead; smoother predictions and a
  /// shorter error tail at the cost of interpretability.
  static Result<PerformancePredictor> TrainForest(
      const std::vector<ExperimentResult>& samples,
      const stats::RegressionForestOptions& options = {});

  /// Predicted parallel-task execution time (seconds) for a
  /// configuration, extracting its features without simulating.
  /// Fails for GPU-OOM configurations (infeasible).
  Result<double> PredictSeconds(const ExperimentConfig& config) const;

  /// Predicted time from an already-described experiment.
  Result<double> PredictSeconds(const ExperimentResult& described) const;

  /// Picks the (grid, processor) with the lowest predicted time among
  /// the candidates; infeasible (OOM) candidates are skipped.
  struct Choice {
    int64_t grid_rows = 0;
    int64_t grid_cols = 0;
    Processor processor = Processor::kCpu;
    double predicted_seconds = 0;
  };
  Result<Choice> PredictBest(
      const ExperimentConfig& base,
      const std::vector<std::pair<int64_t, int64_t>>& grids) const;

  /// Names of the feature vector entries, aligned with
  /// FeatureImportance().
  static const std::vector<std::string>& FeatureNames();

  /// Normalized variance-reduction importances of the model
  /// (tree or forest).
  std::vector<double> FeatureImportance() const;

  /// The underlying tree; only valid for Train()-built predictors.
  const stats::RegressionTree& tree() const;

  bool is_forest() const { return forest_.has_value(); }

  /// Number of training samples actually used.
  size_t training_size() const { return training_size_; }

 private:
  PerformancePredictor() = default;

  static std::vector<double> Featurize(const ExperimentResult& described);
  static Status ExtractTrainingData(
      const std::vector<ExperimentResult>& samples,
      std::vector<std::vector<double>>* rows, std::vector<double>* targets);
  Result<double> PredictLog(const std::vector<double>& features) const;

  std::optional<stats::RegressionTree> tree_;
  std::optional<stats::RegressionForest> forest_;
  size_t training_size_ = 0;
};

}  // namespace taskbench::analysis

#endif  // TASKBENCH_ANALYSIS_PREDICTOR_H_
