#include "analysis/report.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "common/strings.h"
#include "runtime/trace.h"

namespace taskbench::analysis {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  size_t columns = headers_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());

  std::vector<size_t> widths(columns, 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < columns; ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      out << (c == 0 ? "" : "  ") << PadRight(cell, widths[c]);
    }
    out << "\n";
  };
  emit_row(headers_);
  size_t sep_width = 0;
  for (size_t c = 0; c < columns; ++c) sep_width += widths[c] + (c ? 2 : 0);
  out << std::string(sep_width, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string AsciiBarChart(
    const std::vector<std::pair<std::string, double>>& bars, int width) {
  double max_value = 0;
  size_t label_width = 0;
  for (const auto& [label, value] : bars) {
    max_value = std::max(max_value, value);
    label_width = std::max(label_width, label.size());
  }
  std::ostringstream out;
  for (const auto& [label, value] : bars) {
    const int filled =
        max_value > 0
            ? static_cast<int>(value / max_value * width + 0.5)
            : 0;
    out << PadRight(label, label_width) << " |"
        << std::string(static_cast<size_t>(filled), '#') << " "
        << StrFormat("%.4g", value) << "\n";
  }
  return out.str();
}

std::string FormatSpeedup(double signed_speedup) {
  return StrFormat("%.2fx", signed_speedup);
}

std::string AsciiGantt(const runtime::RunReport& report, int width,
                       int max_rows) {
  if (report.records.empty() || report.makespan <= 0 || width < 1) {
    return "(empty run)\n";
  }
  const std::vector<int> lanes = runtime::AssignLanes(report.records);

  // Row key: (node, lane), ordered.
  std::map<std::pair<int, int>, std::string> rows;
  for (size_t i = 0; i < report.records.size(); ++i) {
    const runtime::TaskRecord& rec = report.records[i];
    const std::pair<int, int> key{rec.node < 0 ? 0 : rec.node, lanes[i]};
    auto [it, inserted] =
        rows.try_emplace(key, std::string(static_cast<size_t>(width), '.'));
    std::string& cells = it->second;
    int from = static_cast<int>(rec.start / report.makespan * width);
    int to = static_cast<int>(rec.end / report.makespan * width);
    from = std::max(0, std::min(from, width - 1));
    to = std::max(from, std::min(to, width - 1));
    const char glyph = rec.type.empty() ? '#' : rec.type[0];
    for (int c = from; c <= to; ++c) {
      char& cell = cells[static_cast<size_t>(c)];
      cell = (cell == '.' || cell == glyph) ? glyph : '#';
    }
  }

  std::ostringstream out;
  out << StrFormat("time 0 .. %s across %d columns; rows are "
                   "node:lane, '.' idle\n",
                   HumanSeconds(report.makespan).c_str(), width);
  int emitted = 0;
  for (const auto& [key, cells] : rows) {
    if (emitted++ >= max_rows) {
      out << StrFormat("... (%zu more lanes)\n", rows.size() -
                                                     static_cast<size_t>(
                                                         max_rows));
      break;
    }
    out << PadLeft(StrFormat("%d:%d", key.first, key.second), 6) << " |"
        << cells << "|\n";
  }
  return out.str();
}

}  // namespace taskbench::analysis
