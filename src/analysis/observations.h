#ifndef TASKBENCH_ANALYSIS_OBSERVATIONS_H_
#define TASKBENCH_ANALYSIS_OBSERVATIONS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace taskbench::analysis {

/// Outcome of checking one of the paper's observations O1-O6 against
/// measured sweep data.
struct ObservationCheck {
  std::string id;
  std::string statement;
  bool holds = false;
  std::string evidence;
};

/// O1: "User code speedups are not affected significantly by block
/// size when parallel processing gains are diminished by the serial
/// processing and CPU-GPU communication costs." `user_speedups` are
/// the user-code GPU speedups of a partially parallelizable algorithm
/// across block sizes; holds when their relative spread is small.
ObservationCheck CheckO1(const std::vector<double>& user_speedups);

/// O2: "Parallel task speedups do not increase significantly for
/// coarse-grained tasks, but can significantly improve when data
/// (de-)serialization is fully parallelized using all available CPU
/// cores." Points are (num_tasks, signed parallel-task speedup).
/// Holds when (a) the finest granularity (most tasks) is negative —
/// excess fine-grained tasks lose to data-movement overheads, (b) the
/// speedup at the point saturating the GPU pool (num_tasks closest to
/// `gpu_slots`, where GPU-side (de-)serialization parallelism is
/// maximal) is positive and within 20% of the best observed, and (c)
/// coarser granularities do not significantly beat that plateau.
struct TaskCountSpeedup {
  int64_t num_tasks = 0;
  double speedup = 0;
};
ObservationCheck CheckO2(const std::vector<TaskCountSpeedup>& points,
                         int gpu_slots);

/// O3: "In tasks with low computational complexity, increasing task
/// granularity does not increase significantly GPU speedups over
/// CPU." `low_complexity_speedups` are the user-code speedups of a
/// low-complexity task type (add_func) ordered by increasing block
/// size; holds when growth from finest to coarsest stays small.
ObservationCheck CheckO3(const std::vector<double>& low_complexity_speedups);

/// O4: "GPU speedups over CPU are largely affected by
/// algorithm-specific parameters when their effect dominates the task
/// computational complexity." `speedup_by_param` holds the mean
/// user-code speedup per increasing parameter value (10/100/1000
/// clusters); holds when speedups increase substantially.
ObservationCheck CheckO4(const std::vector<double>& speedup_by_param);

/// O5/O6: policy sensitivity per storage architecture. Each vector
/// holds the per-block-size parallel-task times for one (processor,
/// policy) combination; all four vectors are index-aligned.
struct PolicySensitivityInput {
  std::vector<double> cpu_gen_order;
  std::vector<double> cpu_locality;
  std::vector<double> gpu_gen_order;
  std::vector<double> gpu_locality;
};

/// O5: with local disks, changing the scheduling policy barely moves
/// the CPU/GPU execution times.
ObservationCheck CheckO5(const PolicySensitivityInput& local_disk);

/// O6: with shared disks, the policy change shifts CPU and GPU times
/// more than it does on local disks.
ObservationCheck CheckO6(const PolicySensitivityInput& local_disk,
                         const PolicySensitivityInput& shared_disk);

/// Mean relative shift between two aligned time series, i.e. how much
/// switching policy moved the measurements. Exposed for tests.
double MeanRelativeShift(const std::vector<double>& a,
                         const std::vector<double>& b);

}  // namespace taskbench::analysis

#endif  // TASKBENCH_ANALYSIS_OBSERVATIONS_H_
