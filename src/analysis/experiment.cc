#include "analysis/experiment.h"

#include <utility>

#include "algos/kmeans.h"
#include "algos/matmul.h"
#include "common/logging.h"
#include "common/strings.h"
#include "runtime/simulated_executor.h"

namespace taskbench::analysis {

std::string ToString(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kMatmul:
      return "matmul";
    case Algorithm::kMatmulFma:
      return "matmul-fma";
    case Algorithm::kKMeans:
      return "kmeans";
  }
  return "unknown";
}

ExperimentConfig::ExperimentConfig() : cluster(hw::MinotauroCluster()) {}

double SignedSpeedup(double cpu_time, double gpu_time) {
  TB_CHECK(cpu_time > 0 && gpu_time > 0)
      << "speedup requires positive times, got cpu=" << cpu_time
      << " gpu=" << gpu_time;
  if (gpu_time <= cpu_time) return cpu_time / gpu_time;
  return -(gpu_time / cpu_time);
}

namespace {

/// Builds the workflow graph for `config` and fills the structural
/// features of `result`.
Status BuildGraph(const ExperimentConfig& config, ExperimentResult* result,
                  runtime::TaskGraph* graph) {
  TB_ASSIGN_OR_RETURN(
      data::GridSpec spec,
      data::GridSpec::CreateFromGridDim(config.dataset, config.grid_rows,
                                        config.grid_cols));
  result->block_bytes = spec.full_block_bytes();
  result->num_blocks = spec.num_blocks();

  if (config.algorithm == Algorithm::kKMeans) {
    algos::KMeansOptions options;
    options.num_clusters = config.clusters;
    options.iterations = config.iterations;
    options.processor = config.processor;
    TB_ASSIGN_OR_RETURN(algos::KMeansWorkflow wf,
                        algos::BuildKMeans(spec, options));
    *graph = std::move(wf.graph);

    const data::BlockExtent e = spec.ExtentAt(0, 0);
    const perf::TaskCost cost =
        algos::PartialSumCost(e.rows, e.cols, config.clusters);
    const perf::CostModel model(config.cluster);
    const double parallel = model.CpuParallelFraction(cost);
    const double serial = model.SerialFraction(cost);
    result->parallel_fraction = parallel / (parallel + serial);
    // The paper's stated partial_sum complexity, O(M*N*K^2).
    result->complexity = static_cast<double>(e.rows) *
                         static_cast<double>(e.cols) *
                         static_cast<double>(config.clusters) *
                         static_cast<double>(config.clusters);
  } else {
    algos::MatmulOptions options;
    options.processor = config.processor;
    options.fma = config.algorithm == Algorithm::kMatmulFma;
    TB_ASSIGN_OR_RETURN(algos::MatmulWorkflow wf,
                        algos::BuildMatmul(spec, options));
    *graph = std::move(wf.graph);

    const data::BlockExtent e = spec.ExtentAt(0, 0);
    // Fully parallel user code; complexity of the dominant task,
    // O(N^3) with N the block order.
    result->parallel_fraction = 1.0;
    result->complexity = 2.0 * static_cast<double>(e.rows) *
                         static_cast<double>(e.cols) *
                         static_cast<double>(e.cols);
  }

  result->dag_width = graph->MaxWidth();
  result->dag_height = graph->MaxHeight();
  return Status::OK();
}

}  // namespace

Result<ExperimentResult> DescribeExperiment(const ExperimentConfig& config) {
  ExperimentResult result;
  result.config = config;
  runtime::TaskGraph graph;
  TB_RETURN_IF_ERROR(BuildGraph(config, &result, &graph));
  if (config.processor == Processor::kGpu) {
    const perf::CostModel model(config.cluster);
    for (runtime::TaskId t = 0; t < graph.num_tasks(); ++t) {
      const auto& task = graph.task(t);
      if (task.spec.processor != Processor::kGpu) continue;
      const Status fit = model.CheckGpuFit(task.spec.cost);
      if (!fit.ok()) {
        result.oom = true;
        result.oom_detail = fit.message();
        break;
      }
    }
  }
  return result;
}

Result<ExperimentResult> RunExperiment(const ExperimentConfig& config) {
  ExperimentResult result;
  result.config = config;

  runtime::TaskGraph graph;
  TB_RETURN_IF_ERROR(BuildGraph(config, &result, &graph));

  runtime::SimulatedExecutor executor(config.cluster, config.run);

  Result<runtime::RunReport> run = executor.Execute(graph);
  if (!run.ok()) {
    if (run.status().IsOutOfMemory()) {
      result.oom = true;
      result.oom_detail = run.status().message();
      return result;
    }
    return run.status();
  }

  result.report = std::move(run).value();
  result.stages_by_type = result.report.MeanStagesByType();
  result.parallel_task_time = result.report.MeanLevelTime();
  result.makespan = result.report.makespan;
  return result;
}

}  // namespace taskbench::analysis
