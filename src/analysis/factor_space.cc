#include "analysis/factor_space.h"

#include <utility>

#include "common/strings.h"
#include "data/generators.h"

namespace taskbench::analysis {

std::vector<std::pair<int64_t, int64_t>> MatmulPaperGrids() {
  return {{1, 1}, {2, 2}, {4, 4}, {8, 8}, {16, 16}};
}

std::vector<std::pair<int64_t, int64_t>> KMeansPaperGrids() {
  return {{1, 1},  {2, 1},  {4, 1},   {8, 1},   {16, 1},
          {32, 1}, {64, 1}, {128, 1}, {256, 1}};
}

std::vector<ExperimentConfig> FullFactorial(const FactorLists& lists,
                                            const ExperimentConfig& base) {
  std::vector<ExperimentConfig> configs;
  for (Algorithm algorithm : lists.algorithms) {
    for (const data::DatasetSpec& dataset : lists.datasets) {
      for (const auto& [gr, gc] : lists.grids) {
        for (int clusters : lists.clusters) {
          for (Processor processor : lists.processors) {
            for (hw::StorageArchitecture storage : lists.storages) {
              for (SchedulingPolicy policy : lists.policies) {
                ExperimentConfig config = base;
                config.algorithm = algorithm;
                config.dataset = dataset;
                config.grid_rows = gr;
                config.grid_cols = gc;
                config.clusters = clusters;
                config.processor = processor;
                config.run.storage = storage;
                config.run.policy = policy;
                config.label = StrFormat(
                    "%s/%s/%lldx%lld/%s/%s/%s",
                    ToString(algorithm).c_str(), dataset.name.c_str(),
                    static_cast<long long>(gr), static_cast<long long>(gc),
                    ToString(processor).c_str(), ToString(storage).c_str(),
                    ToString(policy).c_str());
                configs.push_back(std::move(config));
              }
            }
          }
        }
      }
    }
  }
  return configs;
}

std::vector<ExperimentConfig> CorrelationSampleConfigs() {
  using data::PaperDatasets;
  const ExperimentConfig base;
  std::vector<ExperimentConfig> configs;
  auto append = [&configs](std::vector<ExperimentConfig> more) {
    for (auto& config : more) configs.push_back(std::move(config));
  };

  const std::vector<Processor> both_procs{Processor::kCpu, Processor::kGpu};
  const std::vector<hw::StorageArchitecture> shared_only{
      hw::StorageArchitecture::kSharedDisk};
  const std::vector<hw::StorageArchitecture> both_disks{
      hw::StorageArchitecture::kSharedDisk,
      hw::StorageArchitecture::kLocalDisk};
  const std::vector<SchedulingPolicy> gen_only{
      SchedulingPolicy::kTaskGenerationOrder};
  const std::vector<SchedulingPolicy> both_policies{
      SchedulingPolicy::kTaskGenerationOrder,
      SchedulingPolicy::kDataLocality};

  // Figure 10 space: primary datasets x all storage/policy combos.
  FactorLists matmul_primary;
  matmul_primary.algorithms = {Algorithm::kMatmul};
  matmul_primary.datasets = {PaperDatasets::Matmul8GB()};
  matmul_primary.grids = MatmulPaperGrids();
  matmul_primary.processors = both_procs;
  matmul_primary.storages = both_disks;
  matmul_primary.policies = both_policies;
  append(FullFactorial(matmul_primary, base));

  FactorLists kmeans_primary = matmul_primary;
  kmeans_primary.algorithms = {Algorithm::kKMeans};
  kmeans_primary.datasets = {PaperDatasets::KMeans10GB()};
  kmeans_primary.grids = KMeansPaperGrids();
  append(FullFactorial(kmeans_primary, base));

  // Figure 7 large datasets (shared disk, generation order).
  FactorLists matmul_large = matmul_primary;
  matmul_large.datasets = {PaperDatasets::Matmul32GB()};
  matmul_large.storages = shared_only;
  matmul_large.policies = gen_only;
  append(FullFactorial(matmul_large, base));

  FactorLists kmeans_large = kmeans_primary;
  kmeans_large.datasets = {PaperDatasets::KMeans100GB()};
  kmeans_large.storages = shared_only;
  kmeans_large.policies = gen_only;
  append(FullFactorial(kmeans_large, base));

  // Extra small datasets added for diversity (Section 5.4).
  FactorLists matmul_small = matmul_large;
  matmul_small.datasets = {PaperDatasets::Matmul128MB()};
  append(FullFactorial(matmul_small, base));

  FactorLists kmeans_small = kmeans_large;
  kmeans_small.datasets = {PaperDatasets::KMeans100MB()};
  append(FullFactorial(kmeans_small, base));

  // Algorithm-specific parameter diversity: the Figure 9a cluster
  // sweeps (100 and 1000 clusters).
  FactorLists kmeans_clusters = kmeans_large;
  kmeans_clusters.datasets = {PaperDatasets::KMeans10GB()};
  kmeans_clusters.clusters = {100, 1000};
  append(FullFactorial(kmeans_clusters, base));

  // FMA generalizability sweep (Figure 12 companion samples).
  FactorLists fma = matmul_large;
  fma.algorithms = {Algorithm::kMatmulFma};
  fma.datasets = {PaperDatasets::Matmul8GB()};
  fma.grids = {{2, 2}, {4, 4}, {8, 8}};
  append(FullFactorial(fma, base));

  return configs;
}

Result<stats::FeatureTable> BuildFeatureTableFromResults(
    const std::vector<ExperimentResult>& results) {
  std::vector<double> exec_time, block_size, grid_dim, parallel_fraction,
      algo_param, complexity, dag_width, dag_height, dataset_size;
  std::vector<std::string> processor, storage, policy;

  for (const ExperimentResult& result : results) {
    if (result.oom) continue;  // no execution time to correlate
    exec_time.push_back(result.parallel_task_time);
    block_size.push_back(static_cast<double>(result.block_bytes));
    grid_dim.push_back(static_cast<double>(result.num_blocks));
    parallel_fraction.push_back(result.parallel_fraction);
    algo_param.push_back(
        result.config.algorithm == Algorithm::kKMeans
            ? static_cast<double>(result.config.clusters)
            : 0.0);
    complexity.push_back(result.complexity);
    dag_width.push_back(static_cast<double>(result.dag_width));
    dag_height.push_back(static_cast<double>(result.dag_height));
    dataset_size.push_back(static_cast<double>(result.config.dataset.bytes()));
    processor.push_back(ToString(result.config.processor));
    storage.push_back(hw::ToString(result.config.run.storage));
    policy.push_back(ToString(result.config.run.policy));
  }

  stats::FeatureTable table;
  TB_RETURN_IF_ERROR(table.AddNumeric("parallel-task-exec-time",
                                      std::move(exec_time)));
  TB_RETURN_IF_ERROR(table.AddNumeric("block-size", std::move(block_size)));
  TB_RETURN_IF_ERROR(table.AddNumeric("grid-dimension", std::move(grid_dim)));
  TB_RETURN_IF_ERROR(
      table.AddNumeric("parallel-fraction", std::move(parallel_fraction)));
  TB_RETURN_IF_ERROR(
      table.AddNumeric("algorithm-specific-param", std::move(algo_param)));
  TB_RETURN_IF_ERROR(
      table.AddNumeric("computational-complexity", std::move(complexity)));
  TB_RETURN_IF_ERROR(
      table.AddNumeric("dag-max-width", std::move(dag_width)));
  TB_RETURN_IF_ERROR(
      table.AddNumeric("dag-max-height", std::move(dag_height)));
  TB_RETURN_IF_ERROR(
      table.AddNumeric("dataset-size", std::move(dataset_size)));
  TB_RETURN_IF_ERROR(table.AddCategorical("processor", processor));
  TB_RETURN_IF_ERROR(table.AddCategorical("storage", storage));
  TB_RETURN_IF_ERROR(table.AddCategorical("scheduling", policy));
  return table;
}

Result<stats::FeatureTable> BuildFeatureTable(
    const std::vector<ExperimentConfig>& configs) {
  std::vector<ExperimentResult> results;
  results.reserve(configs.size());
  for (const ExperimentConfig& config : configs) {
    TB_ASSIGN_OR_RETURN(ExperimentResult result, RunExperiment(config));
    results.push_back(std::move(result));
  }
  return BuildFeatureTableFromResults(results);
}

}  // namespace taskbench::analysis
