#ifndef TASKBENCH_ANALYSIS_FACTOR_SPACE_H_
#define TASKBENCH_ANALYSIS_FACTOR_SPACE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "analysis/experiment.h"
#include "common/result.h"
#include "stats/feature_table.h"

namespace taskbench::analysis {

/// The grid dimensions of the paper's sizing scenarios
/// (Section 4.4.5): Matmul sweeps square grids 1x1 .. 16x16, K-means
/// sweeps row-wise grids 1x1 .. 256x1.
std::vector<std::pair<int64_t, int64_t>> MatmulPaperGrids();
std::vector<std::pair<int64_t, int64_t>> KMeansPaperGrids();

/// Cartesian product of the given factor values into configs. Every
/// config starts from `base` and overrides algorithm/dataset/grid/
/// processor/storage/policy.
struct FactorLists {
  std::vector<Algorithm> algorithms;
  std::vector<data::DatasetSpec> datasets;
  std::vector<std::pair<int64_t, int64_t>> grids;
  std::vector<int> clusters{10};
  std::vector<Processor> processors;
  std::vector<hw::StorageArchitecture> storages;
  std::vector<SchedulingPolicy> policies;
};

std::vector<ExperimentConfig> FullFactorial(const FactorLists& lists,
                                            const ExperimentConfig& base);

/// The sample set of the correlation analysis (Section 5.4): the
/// Figure 7 and Figure 10 configurations, the extra small datasets
/// (128 MB Matmul, 100 MB K-means), a 100-cluster K-means sweep and
/// an FMA sweep — mirroring the paper's 192-sample design. GPU-OOM
/// configurations are later dropped by BuildFeatureTable since they
/// produce no execution time.
std::vector<ExperimentConfig> CorrelationSampleConfigs();

/// Runs every config, dropping OOM samples, and assembles the
/// Figure 11 feature table: parallel task execution time, block size,
/// grid dimension, parallel fraction, algorithm-specific parameter,
/// computational complexity, DAG width/height, dataset size, and the
/// one-hot encoded processor / storage / scheduling factors.
Result<stats::FeatureTable> BuildFeatureTable(
    const std::vector<ExperimentConfig>& configs);

/// Assembles the feature table from already-run experiments.
Result<stats::FeatureTable> BuildFeatureTableFromResults(
    const std::vector<ExperimentResult>& results);

}  // namespace taskbench::analysis

#endif  // TASKBENCH_ANALYSIS_FACTOR_SPACE_H_
