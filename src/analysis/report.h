#ifndef TASKBENCH_ANALYSIS_REPORT_H_
#define TASKBENCH_ANALYSIS_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "runtime/metrics.h"

namespace taskbench::analysis {

/// Fixed-width text table used by the bench binaries to print the
/// same rows/series the paper's figures plot.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds one row; missing cells render empty, extra cells are kept.
  void AddRow(std::vector<std::string> cells);

  /// Aligned rendering with a header separator.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Horizontal ASCII bar chart: one labeled bar per entry, scaled to
/// `width` characters at the maximum value.
std::string AsciiBarChart(
    const std::vector<std::pair<std::string, double>>& bars, int width = 48);

/// Formats a signed speedup the way the paper annotates its charts,
/// e.g. "5.69x" or "-1.20x".
std::string FormatSpeedup(double signed_speedup);

/// ASCII Gantt chart of a run: one row per busy (node, lane), the
/// makespan binned into `width` columns. Cells show the task type's
/// first letter ('#' when several tasks share a bin), '.' when idle.
/// A quick occupancy view of the paper's resource-wastage story
/// without leaving the terminal (the full trace goes to
/// runtime::WriteChromeTrace).
std::string AsciiGantt(const runtime::RunReport& report, int width = 72,
                       int max_rows = 40);

}  // namespace taskbench::analysis

#endif  // TASKBENCH_ANALYSIS_REPORT_H_
