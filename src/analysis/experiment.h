#ifndef TASKBENCH_ANALYSIS_EXPERIMENT_H_
#define TASKBENCH_ANALYSIS_EXPERIMENT_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "common/types.h"
#include "data/grid.h"
#include "hw/cluster.h"
#include "perf/cost_model.h"
#include "runtime/metrics.h"
#include "runtime/run_options.h"

namespace taskbench::analysis {

/// The workload algorithms of the study (Section 4.1): one fully
/// parallelizable (Matmul, plus its FMA variant for Figure 12) and
/// one partially parallelizable (K-means).
enum class Algorithm { kMatmul, kMatmulFma, kKMeans };

std::string ToString(Algorithm algorithm);

/// One point of the factor space (Table 1): the task algorithm,
/// dataset and block dimensions, the algorithm-specific parameter,
/// and the resource/system factors.
struct ExperimentConfig {
  std::string label;
  Algorithm algorithm = Algorithm::kMatmul;
  data::DatasetSpec dataset;
  int64_t grid_rows = 1;
  int64_t grid_cols = 1;
  /// K-means only: the algorithm-specific parameter (#clusters).
  int clusters = 10;
  /// K-means only: Lloyd iterations (the paper's DAGs use 3).
  int iterations = 3;
  Processor processor = Processor::kCpu;
  /// Execution knobs handed verbatim to the simulated executor:
  /// storage architecture, scheduling policy, fault plan, retry
  /// budget, hybrid placement... (the former standalone storage/policy
  /// fields live in here now).
  runtime::RunOptions run;
  hw::ClusterSpec cluster;  ///< defaults to MinotauroCluster()

  ExperimentConfig();
};

/// The measured outcome plus the derived features the correlation
/// analysis consumes.
struct ExperimentResult {
  ExperimentConfig config;

  /// True when the configuration hits the GPU memory wall — the
  /// "GPU OOM" annotations of Figures 7-10. No timing metrics then.
  bool oom = false;
  std::string oom_detail;

  runtime::RunReport report;

  /// Mean per-stage times per task type (Section 4.2 metrics).
  std::map<std::string, perf::StageTimes> stages_by_type;
  /// The "parallel task execution time" metric: mean DAG-level time.
  double parallel_task_time = 0;
  double makespan = 0;

  // Structural features (Figure 11 axes).
  uint64_t block_bytes = 0;
  int64_t num_blocks = 0;
  int64_t dag_width = 0;
  int64_t dag_height = 0;
  /// Representative task's parallel fraction of the user code on CPU,
  /// in [0, 1]: 1.0 for fully parallel tasks (Matmul), lower for
  /// partially parallel ones (K-means).
  double parallel_fraction = 0;
  /// Representative task's computational complexity feature (flops;
  /// the paper's O(N^3) / O(MNK^2) expressions evaluated).
  double complexity = 0;
};

/// Builds the workflow for `config` and replays it on the simulated
/// cluster. GPU OOM is reported in the result (oom = true), not as an
/// error; other failures propagate.
Result<ExperimentResult> RunExperiment(const ExperimentConfig& config);

/// Computes the structural features of `config` (block size, DAG
/// shape, parallel fraction, complexity, and the OOM flag for GPU
/// configurations) WITHOUT executing the simulation — the cheap
/// feature extraction the learned performance predictor relies on.
/// Timing fields are zero.
Result<ExperimentResult> DescribeExperiment(const ExperimentConfig& config);

/// Signed speedup in the paper's reporting convention: how many times
/// faster is `gpu` than `cpu`; when GPU is slower the ratio is
/// negated (Figure 1 reports "-1.20x"). Requires positive times.
double SignedSpeedup(double cpu_time, double gpu_time);

}  // namespace taskbench::analysis

#endif  // TASKBENCH_ANALYSIS_EXPERIMENT_H_
