#include "analysis/csv.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace taskbench::analysis {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string ExperimentsCsv(const std::vector<ExperimentResult>& results) {
  std::ostringstream out;
  out << "label,algorithm,dataset,dataset_bytes,grid_rows,grid_cols,"
         "clusters,processor,storage,policy,block_bytes,num_blocks,"
         "dag_width,dag_height,parallel_fraction,complexity,oom,"
         "parallel_task_time_s,makespan_s,scheduler_overhead_s,"
         "sched_ready_pop_s,sched_locality_s,sched_slot_pick_s,"
         "faults_injected,storage_faults,retries,recomputed_tasks,"
         "lost_blocks,dead_nodes\n";
  for (const ExperimentResult& r : results) {
    const ExperimentConfig& c = r.config;
    out << CsvEscape(c.label) << ',' << ToString(c.algorithm) << ','
        << CsvEscape(c.dataset.name) << ',' << c.dataset.bytes() << ','
        << c.grid_rows << ',' << c.grid_cols << ',' << c.clusters << ','
        << ToString(c.processor) << ',' << hw::ToString(c.run.storage) << ','
        << ToString(c.run.policy) << ',' << r.block_bytes << ','
        << r.num_blocks << ',' << r.dag_width << ',' << r.dag_height << ','
        << StrFormat("%.6g", r.parallel_fraction) << ','
        << StrFormat("%.6g", r.complexity) << ',' << (r.oom ? 1 : 0) << ',';
    if (r.oom) {
      out << ",,,,,,,,,,,\n";
    } else {
      const runtime::FaultStats& f = r.report.faults;
      const runtime::SchedulerPhaseBreakdown& ph = r.report.sched_phases;
      out << StrFormat("%.6g", r.parallel_task_time) << ','
          << StrFormat("%.6g", r.makespan) << ','
          << StrFormat("%.6g", r.report.scheduler_overhead) << ','
          << StrFormat("%.6g", ph.ready_pop_s) << ','
          << StrFormat("%.6g", ph.locality_s) << ','
          << StrFormat("%.6g", ph.slot_pick_s) << ','
          << f.faults_injected << ',' << f.storage_faults << ','
          << f.retries << ',' << f.recomputed_tasks << ','
          << f.lost_blocks << ',' << f.dead_nodes << '\n';
    }
  }
  return out.str();
}

std::string TaskRecordsCsv(const runtime::RunReport& report) {
  std::ostringstream out;
  out << "task,type,level,processor,node,start_s,end_s,deserialize_s,"
         "serial_fraction_s,parallel_fraction_s,cpu_gpu_comm_s,"
         "serialize_s,attempt\n";
  for (const runtime::TaskRecord& rec : report.records) {
    out << rec.task << ',' << CsvEscape(rec.type) << ',' << rec.level << ','
        << ToString(rec.processor) << ',' << rec.node << ','
        << StrFormat("%.9g", rec.start) << ','
        << StrFormat("%.9g", rec.end) << ','
        << StrFormat("%.9g", rec.stages.deserialize) << ','
        << StrFormat("%.9g", rec.stages.serial_fraction) << ','
        << StrFormat("%.9g", rec.stages.parallel_fraction) << ','
        << StrFormat("%.9g", rec.stages.cpu_gpu_comm) << ','
        << StrFormat("%.9g", rec.stages.serialize) << ','
        << rec.attempt << '\n';
  }
  return out.str();
}

std::string CorrelationCsv(const stats::CorrelationMatrix& matrix) {
  std::ostringstream out;
  out << "feature";
  for (const auto& name : matrix.names) out << ',' << CsvEscape(name);
  out << '\n';
  for (size_t i = 0; i < matrix.names.size(); ++i) {
    out << CsvEscape(matrix.names[i]);
    for (size_t j = 0; j < matrix.names.size(); ++j) {
      const double v = matrix.values[i][j];
      out << ',';
      if (!std::isnan(v)) out << StrFormat("%.6f", v);
    }
    out << '\n';
  }
  return out.str();
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::Internal(StrFormat("cannot open '%s'", path.c_str()));
  }
  file << contents;
  if (!file) {
    return Status::Internal(StrFormat("short write to '%s'", path.c_str()));
  }
  return Status::OK();
}

}  // namespace taskbench::analysis
