#include "analysis/guidelines.h"

#include <cmath>
#include <limits>

#include "common/strings.h"

namespace taskbench::analysis {

Result<Recommendation> RecommendConfiguration(
    const ExperimentConfig& base,
    const std::vector<std::pair<int64_t, int64_t>>& candidate_grids) {
  if (candidate_grids.empty()) {
    return Status::InvalidArgument("no candidate grids supplied");
  }

  Recommendation rec;
  double best = std::numeric_limits<double>::infinity();
  double best_cpu = std::numeric_limits<double>::infinity();
  for (const auto& [gr, gc] : candidate_grids) {
    for (Processor proc : {Processor::kCpu, Processor::kGpu}) {
      if (proc == Processor::kGpu && base.cluster.total_gpus() == 0) {
        continue;
      }
      ExperimentConfig config = base;
      config.grid_rows = gr;
      config.grid_cols = gc;
      config.processor = proc;
      TB_ASSIGN_OR_RETURN(const ExperimentResult result,
                          RunExperiment(config));
      CandidateOutcome outcome;
      outcome.grid_rows = gr;
      outcome.grid_cols = gc;
      outcome.processor = proc;
      outcome.oom = result.oom;
      outcome.makespan = result.oom ? 0 : result.makespan;
      rec.evaluated.push_back(outcome);
      if (result.oom) continue;
      if (proc == Processor::kCpu && result.makespan < best_cpu) {
        best_cpu = result.makespan;
      }
      if (result.makespan < best) {
        best = result.makespan;
        rec.grid_rows = gr;
        rec.grid_cols = gc;
        rec.processor = proc;
        rec.makespan = result.makespan;
      }
    }
  }
  if (!std::isfinite(best)) {
    return Status::FailedPrecondition(
        "every candidate configuration was infeasible (GPU OOM)");
  }
  rec.gpu_benefit = std::isfinite(best_cpu) ? best_cpu / best : 1.0;
  return rec;
}

}  // namespace taskbench::analysis
