#ifndef TASKBENCH_ANALYSIS_GUIDELINES_H_
#define TASKBENCH_ANALYSIS_GUIDELINES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/experiment.h"
#include "common/result.h"

namespace taskbench::analysis {

/// One candidate evaluated by the recommender.
struct CandidateOutcome {
  int64_t grid_rows = 0;
  int64_t grid_cols = 0;
  Processor processor = Processor::kCpu;
  bool oom = false;
  double makespan = 0;
};

/// A configuration recommendation for one workload.
struct Recommendation {
  int64_t grid_rows = 0;
  int64_t grid_cols = 0;
  Processor processor = Processor::kCpu;
  double makespan = 0;
  /// Ratio best-CPU-config / best-overall: how much choosing the
  /// right processor matters for this workload.
  double gpu_benefit = 1.0;
  /// All evaluated points (the recommendation's evidence).
  std::vector<CandidateOutcome> evaluated;
};

/// The "toward automated design" direction of Section 5.4.3 made
/// concrete: sweeps the block-dimension factor and the processor type
/// with the simulator and returns the fastest feasible configuration.
/// GPU-OOM candidates are recorded but never recommended. The base
/// config supplies the algorithm, dataset, cluster, storage and
/// policy; grid_rows/grid_cols/processor are overridden per
/// candidate.
Result<Recommendation> RecommendConfiguration(
    const ExperimentConfig& base,
    const std::vector<std::pair<int64_t, int64_t>>& candidate_grids);

}  // namespace taskbench::analysis

#endif  // TASKBENCH_ANALYSIS_GUIDELINES_H_
