#include "analysis/observations.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "stats/correlation.h"

namespace taskbench::analysis {

double MeanRelativeShift(const std::vector<double>& a,
                         const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) return 0;
  double total = 0;
  size_t counted = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double base = std::max(a[i], b[i]);
    if (base <= 0) continue;
    total += std::fabs(a[i] - b[i]) / base;
    ++counted;
  }
  return counted == 0 ? 0 : total / static_cast<double>(counted);
}

ObservationCheck CheckO1(const std::vector<double>& user_speedups) {
  ObservationCheck check;
  check.id = "O1";
  check.statement =
      "User code speedups are not affected significantly by block size "
      "when parallel gains are diminished by serial and CPU-GPU "
      "communication costs";
  if (user_speedups.size() < 2) {
    check.evidence = "insufficient data";
    return check;
  }
  const double mean = stats::Mean(user_speedups);
  const double spread = stats::StdDev(user_speedups);
  const double cv = mean > 0 ? spread / mean : 1e9;
  check.holds = cv < 0.35;
  check.evidence = StrFormat(
      "user-code speedups mean %.2fx, coefficient of variation %.2f "
      "(threshold 0.35)", mean, cv);
  return check;
}

ObservationCheck CheckO2(const std::vector<TaskCountSpeedup>& points,
                         int gpu_slots) {
  ObservationCheck check;
  check.id = "O2";
  check.statement =
      "Parallel task speedups do not increase significantly for "
      "coarse-grained tasks, but improve when data (de-)serialization "
      "is fully parallelized; excess fine-grained tasks turn negative";
  if (points.size() < 3) {
    check.evidence = "insufficient data";
    return check;
  }
  const TaskCountSpeedup* best = &points[0];
  const TaskCountSpeedup* finest = &points[0];
  const TaskCountSpeedup* saturating = &points[0];
  for (const TaskCountSpeedup& p : points) {
    if (p.speedup > best->speedup) best = &p;
    if (p.num_tasks > finest->num_tasks) finest = &p;
    // Point whose task count is closest to the GPU pool size (full
    // (de-)serialization parallelism on the accelerated run).
    if (std::fabs(std::log2(static_cast<double>(p.num_tasks)) -
                  std::log2(static_cast<double>(gpu_slots))) <
        std::fabs(std::log2(static_cast<double>(saturating->num_tasks)) -
                  std::log2(static_cast<double>(gpu_slots)))) {
      saturating = &p;
    }
  }
  const bool fine_negative = finest->speedup < 1.0;
  const bool plateau_positive = saturating->speedup > 1.0;
  const bool plateau_near_best =
      saturating->speedup >= 0.8 * best->speedup;
  check.holds = fine_negative && plateau_positive && plateau_near_best;
  check.evidence = StrFormat(
      "finest granularity (%lld tasks): %.2fx; at ~%d tasks (GPU pool "
      "saturated): %.2fx; best observed: %.2fx at %lld tasks",
      static_cast<long long>(finest->num_tasks), finest->speedup, gpu_slots,
      saturating->speedup, best->speedup,
      static_cast<long long>(best->num_tasks));
  return check;
}

ObservationCheck CheckO3(const std::vector<double>& low_complexity_speedups) {
  ObservationCheck check;
  check.id = "O3";
  check.statement =
      "In tasks with low computational complexity, increasing task "
      "granularity does not increase significantly GPU speedups";
  if (low_complexity_speedups.size() < 2) {
    check.evidence = "insufficient data";
    return check;
  }
  double lo = low_complexity_speedups[0];
  double hi = low_complexity_speedups[0];
  for (double s : low_complexity_speedups) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  // Signed speedups hover below 1x; significant growth would multiply
  // the magnitude severalfold across the sweep.
  const double growth = std::fabs(lo) > 0 ? std::fabs(hi / lo) : 1e9;
  check.holds = growth < 2.0 && hi < 2.0;
  check.evidence = StrFormat(
      "low-complexity speedups stay in [%.2fx, %.2fx] across block sizes "
      "(growth factor %.2f, threshold 2.0)", lo, hi, growth);
  return check;
}

ObservationCheck CheckO4(const std::vector<double>& speedup_by_param) {
  ObservationCheck check;
  check.id = "O4";
  check.statement =
      "GPU speedups over CPU are largely affected by algorithm-specific "
      "parameters when their effect dominates task complexity";
  if (speedup_by_param.size() < 2) {
    check.evidence = "insufficient data";
    return check;
  }
  bool increasing = true;
  for (size_t i = 1; i < speedup_by_param.size(); ++i) {
    if (speedup_by_param[i] <= speedup_by_param[i - 1]) increasing = false;
  }
  const double gain = speedup_by_param.back() / speedup_by_param.front();
  check.holds = increasing && gain > 2.0;
  std::vector<std::string> rendered;
  for (double s : speedup_by_param) rendered.push_back(StrFormat("%.2fx", s));
  check.evidence = StrFormat(
      "speedups by parameter value: %s (monotone=%s, total gain %.1fx)",
      Join(rendered, ", ").c_str(), increasing ? "yes" : "no", gain);
  return check;
}

ObservationCheck CheckO5(const PolicySensitivityInput& local_disk) {
  ObservationCheck check;
  check.id = "O5";
  check.statement =
      "With local disks, scheduling policy variations barely affect "
      "CPU and GPU execution times";
  const double cpu_shift =
      MeanRelativeShift(local_disk.cpu_gen_order, local_disk.cpu_locality);
  const double gpu_shift =
      MeanRelativeShift(local_disk.gpu_gen_order, local_disk.gpu_locality);
  check.holds = cpu_shift < 0.15 && gpu_shift < 0.15;
  check.evidence = StrFormat(
      "local disk policy shift: CPU %.1f%%, GPU %.1f%% (threshold 15%%)",
      cpu_shift * 100, gpu_shift * 100);
  return check;
}

ObservationCheck CheckO6(const PolicySensitivityInput& local_disk,
                         const PolicySensitivityInput& shared_disk) {
  ObservationCheck check;
  check.id = "O6";
  check.statement =
      "With shared disks, scheduling policy variations affect execution "
      "times more than with local disks (low-complexity tasks)";
  const double local_shift =
      (MeanRelativeShift(local_disk.cpu_gen_order, local_disk.cpu_locality) +
       MeanRelativeShift(local_disk.gpu_gen_order, local_disk.gpu_locality)) /
      2;
  const double shared_shift =
      (MeanRelativeShift(shared_disk.cpu_gen_order,
                         shared_disk.cpu_locality) +
       MeanRelativeShift(shared_disk.gpu_gen_order,
                         shared_disk.gpu_locality)) /
      2;
  check.holds = shared_shift > local_shift;
  check.evidence = StrFormat(
      "mean policy shift: shared disk %.1f%% vs local disk %.1f%%",
      shared_shift * 100, local_shift * 100);
  return check;
}

}  // namespace taskbench::analysis
