#include "analysis/predictor.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/strings.h"

namespace taskbench::analysis {

const std::vector<std::string>& PerformancePredictor::FeatureNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "block-size",        "grid-dimension",     "parallel-fraction",
      "algorithm-param",   "complexity",         "dag-max-width",
      "dag-max-height",    "dataset-size",       "is-gpu",
      "is-shared-disk",    "is-locality-policy",
  };
  return *kNames;
}

std::vector<double> PerformancePredictor::Featurize(
    const ExperimentResult& d) {
  return {
      static_cast<double>(d.block_bytes),
      static_cast<double>(d.num_blocks),
      d.parallel_fraction,
      d.config.algorithm == Algorithm::kKMeans
          ? static_cast<double>(d.config.clusters)
          : 0.0,
      d.complexity,
      static_cast<double>(d.dag_width),
      static_cast<double>(d.dag_height),
      static_cast<double>(d.config.dataset.bytes()),
      d.config.processor == Processor::kGpu ? 1.0 : 0.0,
      d.config.run.storage == hw::StorageArchitecture::kSharedDisk ? 1.0 : 0.0,
      d.config.run.policy == SchedulingPolicy::kDataLocality ? 1.0 : 0.0,
  };
}

Status PerformancePredictor::ExtractTrainingData(
    const std::vector<ExperimentResult>& samples,
    std::vector<std::vector<double>>* rows, std::vector<double>* targets) {
  for (const ExperimentResult& sample : samples) {
    if (sample.oom || sample.parallel_task_time <= 0) continue;
    rows->push_back(Featurize(sample));
    targets->push_back(std::log(sample.parallel_task_time));
  }
  if (rows->size() < 8) {
    return Status::FailedPrecondition(StrFormat(
        "need >= 8 executed samples to train, got %zu", rows->size()));
  }
  return Status::OK();
}

Result<PerformancePredictor> PerformancePredictor::Train(
    const std::vector<ExperimentResult>& samples,
    const stats::RegressionTreeOptions& options) {
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  TB_RETURN_IF_ERROR(ExtractTrainingData(samples, &rows, &targets));
  PerformancePredictor predictor;
  TB_ASSIGN_OR_RETURN(predictor.tree_,
                      stats::RegressionTree::Fit(rows, targets, options));
  predictor.training_size_ = rows.size();
  return predictor;
}

Result<PerformancePredictor> PerformancePredictor::TrainForest(
    const std::vector<ExperimentResult>& samples,
    const stats::RegressionForestOptions& options) {
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  TB_RETURN_IF_ERROR(ExtractTrainingData(samples, &rows, &targets));
  PerformancePredictor predictor;
  TB_ASSIGN_OR_RETURN(predictor.forest_,
                      stats::RegressionForest::Fit(rows, targets, options));
  predictor.training_size_ = rows.size();
  return predictor;
}

const stats::RegressionTree& PerformancePredictor::tree() const {
  TB_CHECK(tree_.has_value()) << "predictor was trained as a forest";
  return *tree_;
}

std::vector<double> PerformancePredictor::FeatureImportance() const {
  return forest_.has_value() ? forest_->FeatureImportance()
                             : tree_->FeatureImportance();
}

Result<double> PerformancePredictor::PredictLog(
    const std::vector<double>& features) const {
  if (forest_.has_value()) return forest_->Predict(features);
  if (tree_.has_value()) return tree_->Predict(features);
  return Status::FailedPrecondition("predictor is not trained");
}

Result<double> PerformancePredictor::PredictSeconds(
    const ExperimentResult& described) const {
  if (described.oom) {
    return Status::FailedPrecondition(
        "configuration is GPU-OOM infeasible; nothing to predict");
  }
  TB_ASSIGN_OR_RETURN(const double log_time,
                      PredictLog(Featurize(described)));
  return std::exp(log_time);
}

Result<double> PerformancePredictor::PredictSeconds(
    const ExperimentConfig& config) const {
  TB_ASSIGN_OR_RETURN(const ExperimentResult described,
                      DescribeExperiment(config));
  return PredictSeconds(described);
}

Result<PerformancePredictor::Choice> PerformancePredictor::PredictBest(
    const ExperimentConfig& base,
    const std::vector<std::pair<int64_t, int64_t>>& grids) const {
  if (grids.empty()) {
    return Status::InvalidArgument("no candidate grids");
  }
  Choice best;
  double best_time = std::numeric_limits<double>::infinity();
  for (const auto& [gr, gc] : grids) {
    for (Processor proc : {Processor::kCpu, Processor::kGpu}) {
      if (proc == Processor::kGpu && base.cluster.total_gpus() == 0) {
        continue;
      }
      ExperimentConfig config = base;
      config.grid_rows = gr;
      config.grid_cols = gc;
      config.processor = proc;
      TB_ASSIGN_OR_RETURN(const ExperimentResult described,
                          DescribeExperiment(config));
      if (described.oom) continue;
      TB_ASSIGN_OR_RETURN(const double predicted,
                          PredictSeconds(described));
      if (predicted < best_time) {
        best_time = predicted;
        best = Choice{gr, gc, proc, predicted};
      }
    }
  }
  if (!std::isfinite(best_time)) {
    return Status::FailedPrecondition("every candidate was infeasible");
  }
  return best;
}

}  // namespace taskbench::analysis
