#ifndef TASKBENCH_ANALYSIS_CSV_H_
#define TASKBENCH_ANALYSIS_CSV_H_

#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "common/status.h"
#include "runtime/metrics.h"
#include "stats/feature_table.h"

namespace taskbench::analysis {

/// CSV renderers for downstream plotting (pandas/matplotlib, R,
/// gnuplot). Fields containing commas, quotes or newlines are quoted
/// per RFC 4180.

/// One row per experiment: the config factors, structural features,
/// the outcome metrics (or oom=1), and the fault/recovery counters
/// (all zero on fault-free runs).
std::string ExperimentsCsv(const std::vector<ExperimentResult>& results);

/// One row per executed task of a run: placement plus per-stage
/// times and the attempt number that finally completed (1 unless
/// faults forced retries).
std::string TaskRecordsCsv(const runtime::RunReport& report);

/// The correlation matrix as a CSV table (first column = feature
/// name). NaN cells render empty.
std::string CorrelationCsv(const stats::CorrelationMatrix& matrix);

/// Escapes one CSV field per RFC 4180.
std::string CsvEscape(const std::string& field);

/// Writes `contents` to `path`.
Status WriteFile(const std::string& path, const std::string& contents);

}  // namespace taskbench::analysis

#endif  // TASKBENCH_ANALYSIS_CSV_H_
