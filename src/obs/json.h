#ifndef TASKBENCH_OBS_JSON_H_
#define TASKBENCH_OBS_JSON_H_

#include <string_view>

#include "common/status.h"

namespace taskbench::obs {

/// Minimal JSON well-formedness checker (RFC 8259 syntax; no value
/// materialization, so it scans arbitrarily large documents in O(n)
/// with O(depth) memory). Used by the trace/metrics tests and the
/// `json_lint` CI tool to prove every document the exporters emit
/// parses cleanly — including names carrying quotes, backslashes and
/// control characters.
///
/// Returns OK for a single valid JSON value surrounded only by
/// whitespace; InvalidArgument with a byte offset otherwise.
Status ValidateJson(std::string_view text);

}  // namespace taskbench::obs

#endif  // TASKBENCH_OBS_JSON_H_
