#ifndef TASKBENCH_OBS_METRICS_H_
#define TASKBENCH_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>

namespace taskbench::obs {

/// Lightweight run-telemetry instruments. Design constraints, in
/// order: (1) near-zero hot-path cost — an enabled instrument is a
/// plain add on a pre-resolved pointer, a disabled one is a single
/// null check in the executor; (2) deterministic export — the
/// registry renders in sorted name order; (3) no locks — executors
/// keep per-worker instances and Merge() them after the workers join
/// (the registry itself is not thread-safe).

/// Monotonic event count (decisions made, blocks read, steals...).
class Counter {
 public:
  void Add(int64_t n = 1) { value_ += n; }
  int64_t value() const { return value_; }
  void Merge(const Counter& other) { value_ += other.value_; }

 private:
  int64_t value_ = 0;
};

/// Last-written scalar (configured worker count, peak queue depth...).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  /// Keeps the running maximum — for high-water marks.
  void SetMax(double v) {
    if (v > value_) value_ = v;
  }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-footprint distribution of positive doubles on power-of-two
/// buckets: bucket i holds values in [2^(i+kMinExp-1), 2^(i+kMinExp)).
/// With kMinExp = -34 the range spans ~5.8e-11 .. 1.1e9 — nanoseconds
/// to decades when recording seconds. Values outside clamp to the
/// edge buckets; zero and negatives count toward min/sum but no
/// bucket. Record() is a frexp + two adds: cheap enough for per-task
/// stage times on million-task DAGs.
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr int kMinExp = -34;

  void Record(double v);
  void Merge(const Histogram& other);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0; }
  double max() const { return max_; }
  double mean() const { return count_ > 0 ? sum_ / count_ : 0; }

  /// Inclusive upper bound of bucket `i` and its occupancy.
  static double BucketUpperBound(int i);
  int64_t bucket_count(int i) const { return buckets_[i]; }

  /// Renders as a JSON object: count/sum/min/max/mean plus the
  /// non-empty buckets as [{"le": bound, "count": n}, ...].
  void WriteJson(std::ostream& out) const;

 private:
  int64_t buckets_[kBuckets] = {};
  int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Named instruments of one run. Lookup is a map find per name —
/// resolve handles once at run start, then mutate through the
/// returned pointers (stable for the registry's lifetime).
class MetricsRegistry {
 public:
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Merges every instrument of `other` into this registry,
  /// creating missing names. Gauges merge by maximum.
  void MergeFrom(const MetricsRegistry& other);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Renders the registry as one JSON object:
  ///   {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// Names are JsonEscape'd; order is sorted by name (deterministic).
  void WriteJson(std::ostream& out) const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace taskbench::obs

#endif  // TASKBENCH_OBS_METRICS_H_
