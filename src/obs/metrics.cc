#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace taskbench::obs {

namespace {

int BucketFor(double v) {
  int exp = 0;
  std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  return std::clamp(exp - Histogram::kMinExp, 0, Histogram::kBuckets - 1);
}

/// Shortest-ish float rendering that is always valid JSON (never
/// "nan"/"inf" — callers only feed finite values).
std::string Num(double v) { return StrFormat("%.9g", v); }

}  // namespace

void Histogram::Record(double v) {
  if (count_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  sum_ += v;
  ++count_;
  if (v > 0) ++buckets_[BucketFor(v)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  count_ += other.count_;
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
}

double Histogram::BucketUpperBound(int i) {
  return std::ldexp(1.0, i + kMinExp);
}

void Histogram::WriteJson(std::ostream& out) const {
  out << "{\"count\": " << count_ << ", \"sum\": " << Num(sum_)
      << ", \"min\": " << Num(min()) << ", \"max\": " << Num(max_)
      << ", \"mean\": " << Num(mean()) << ", \"buckets\": [";
  bool first = true;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (!first) out << ", ";
    first = false;
    out << "{\"le\": " << Num(BucketUpperBound(i))
        << ", \"count\": " << buckets_[i] << "}";
  }
  out << "]}";
}

Counter* MetricsRegistry::counter(std::string_view name) {
  return &counters_.try_emplace(std::string(name)).first->second;
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  return &gauges_.try_emplace(std::string(name)).first->second;
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  return &histograms_.try_emplace(std::string(name)).first->second;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counter(name)->Merge(c);
  for (const auto& [name, g] : other.gauges_) gauge(name)->SetMax(g.value());
  for (const auto& [name, h] : other.histograms_) histogram(name)->Merge(h);
}

void MetricsRegistry::WriteJson(std::ostream& out) const {
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ", ";
    first = false;
    out << '"' << JsonEscape(name) << "\": " << c.value();
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ", ";
    first = false;
    out << '"' << JsonEscape(name) << "\": " << Num(g.value());
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ", ";
    first = false;
    out << '"' << JsonEscape(name) << "\": ";
    h.WriteJson(out);
  }
  out << "}}";
}

}  // namespace taskbench::obs
