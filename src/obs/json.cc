#include "obs/json.h"

#include <cctype>

#include "common/strings.h"

namespace taskbench::obs {

namespace {

/// Recursive-descent scanner over `text`. Position advances
/// monotonically; errors carry the offending byte offset.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  Status Run() {
    SkipWs();
    TB_RETURN_IF_ERROR(Value(0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON value");
    }
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status Error(const char* what) const {
    return Status::InvalidArgument(
        StrFormat("%s at byte %zu", what, pos_));
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWs() {
    while (!Eof() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                      Peek() == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (Eof() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    return Status::OK();
  }

  Status String() {
    if (!Consume('"')) return Error("expected '\"'");
    while (!Eof()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Error("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (Eof()) return Error("truncated escape");
        const char e = text_[pos_];
        if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
            e == 'n' || e == 'r' || e == 't') {
          ++pos_;
        } else if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i, ++pos_) {
            if (Eof() || !std::isxdigit(static_cast<unsigned char>(Peek()))) {
              return Error("invalid \\u escape");
            }
          }
        } else {
          return Error("invalid escape character");
        }
      } else {
        ++pos_;
      }
    }
    return Error("unterminated string");
  }

  Status Number() {
    Consume('-');
    if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Error("invalid number");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("invalid fraction");
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!Eof() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!Eof() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("invalid exponent");
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    return Status::OK();
  }

  Status Value(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (Eof()) return Error("expected a JSON value");
    switch (Peek()) {
      case '{':
        return Object(depth);
      case '[':
        return Array(depth);
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  Status Object(int depth) {
    Consume('{');
    SkipWs();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWs();
      TB_RETURN_IF_ERROR(String());
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      SkipWs();
      TB_RETURN_IF_ERROR(Value(depth + 1));
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  Status Array(int depth) {
    Consume('[');
    SkipWs();
    if (Consume(']')) return Status::OK();
    for (;;) {
      SkipWs();
      TB_RETURN_IF_ERROR(Value(depth + 1));
      SkipWs();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Status ValidateJson(std::string_view text) { return Scanner(text).Run(); }

}  // namespace taskbench::obs
