#include "obs/trace_writer.h"

#include <string>

#include "common/strings.h"

namespace taskbench::obs {

TraceWriter::TraceWriter(std::ostream* out) : out_(out) {
  *out_ << "{\n\"traceEvents\": [\n";
}

TraceWriter::~TraceWriter() { Close(); }

void TraceWriter::NextEvent() {
  if (!first_) *out_ << ",\n";
  first_ = false;
  ++events_written_;
}

void TraceWriter::CompleteEvent(std::string_view name,
                                std::string_view category, int pid, int tid,
                                double ts_us, double dur_us) {
  NextEvent();
  *out_ << StrFormat(
      "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
      "\"pid\": %d, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}",
      JsonEscape(name).c_str(), JsonEscape(category).c_str(), pid, tid,
      ts_us, dur_us);
}

void TraceWriter::FlowStart(std::string_view name, uint64_t id, int pid,
                            int tid, double ts_us) {
  NextEvent();
  *out_ << StrFormat(
      "  {\"name\": \"%s\", \"cat\": \"flow\", \"ph\": \"s\", "
      "\"id\": %llu, \"pid\": %d, \"tid\": %d, \"ts\": %.3f}",
      JsonEscape(name).c_str(), static_cast<unsigned long long>(id), pid,
      tid, ts_us);
}

void TraceWriter::FlowFinish(std::string_view name, uint64_t id, int pid,
                             int tid, double ts_us) {
  NextEvent();
  // "bp": "e" binds the arrowhead to the enclosing slice, the
  // rendering Perfetto expects for dependency arrows.
  *out_ << StrFormat(
      "  {\"name\": \"%s\", \"cat\": \"flow\", \"ph\": \"f\", \"bp\": "
      "\"e\", \"id\": %llu, \"pid\": %d, \"tid\": %d, \"ts\": %.3f}",
      JsonEscape(name).c_str(), static_cast<unsigned long long>(id), pid,
      tid, ts_us);
}

void TraceWriter::ProcessName(int pid, std::string_view name) {
  NextEvent();
  *out_ << StrFormat(
      "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, "
      "\"args\": {\"name\": \"%s\"}}",
      pid, JsonEscape(name).c_str());
}

void TraceWriter::Close() {
  if (closed_) return;
  closed_ = true;
  *out_ << "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
}

}  // namespace taskbench::obs
