#ifndef TASKBENCH_OBS_TRACE_WRITER_H_
#define TASKBENCH_OBS_TRACE_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string_view>

namespace taskbench::obs {

/// Streaming Chrome-tracing (Trace Event Format) writer. Events are
/// formatted one at a time and pushed straight into the ostream, so
/// exporting a million-task run costs constant memory — the previous
/// exporter materialized the whole document in one string, which is
/// exactly what fell over on PR 1's million-task DAGs. Every string
/// routed into the document is JSON-escaped.
///
/// Timestamps and durations are in microseconds (the Trace Event
/// Format unit). Typical use:
///
///   obs::TraceWriter w(&out);
///   w.CompleteEvent("matmul #3 (GPU)", "task", /*pid=*/0, /*tid=*/1,
///                   12.0, 3400.0);
///   w.FlowStart("dep", 7, 0, 1, 3412.0);
///   w.FlowFinish("dep", 7, 0, 2, 3500.0);
///   w.ProcessName(0, "node 0");
///   w.Close();
class TraceWriter {
 public:
  /// Writes the document prologue. `out` must outlive the writer.
  explicit TraceWriter(std::ostream* out);

  /// Closes the document if Close() was not called.
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// One complete slice ("ph": "X").
  void CompleteEvent(std::string_view name, std::string_view category,
                     int pid, int tid, double ts_us, double dur_us);

  /// Flow-event pair ("ph": "s" / "f"): an arrow from the point the
  /// start was emitted at to the point the finish was emitted at —
  /// used for producer→consumer dependency edges. `id` ties the two
  /// halves together and must be unique per arrow within the trace.
  void FlowStart(std::string_view name, uint64_t id, int pid, int tid,
                 double ts_us);
  void FlowFinish(std::string_view name, uint64_t id, int pid, int tid,
                  double ts_us);

  /// Process-name metadata record ("ph": "M").
  void ProcessName(int pid, std::string_view name);

  /// Writes the epilogue. Idempotent; no events may follow.
  void Close();

  /// Events emitted so far (all kinds).
  uint64_t events_written() const { return events_written_; }

 private:
  /// Emits the separating ",\n" before every event but the first.
  void NextEvent();

  std::ostream* out_;
  bool first_ = true;
  bool closed_ = false;
  uint64_t events_written_ = 0;
};

}  // namespace taskbench::obs

#endif  // TASKBENCH_OBS_TRACE_WRITER_H_
