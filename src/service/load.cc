#include "service/load.h"

#include <chrono>
#include <mutex>
#include <thread>
#include <utility>

#include "check/workload.h"
#include "common/random.h"

namespace taskbench::service {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

Result<LoadStats> RunOpenLoad(WorkflowService* service,
                              const std::vector<TenantLoad>& loads,
                              double duration_s) {
  if (service == nullptr) {
    return Status::InvalidArgument("RunOpenLoad needs a service");
  }
  if (loads.empty()) {
    return Status::InvalidArgument("RunOpenLoad needs at least one tenant");
  }

  LoadStats total;
  Status first_error;
  std::mutex mu;  // guards total + first_error
  const Clock::time_point end =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(duration_s));

  auto submitter = [&](const TenantLoad& load) {
    ArrivalGenerator arrivals(load.arrivals, load.seed);
    // Decorrelate workload shapes from interarrival times: both stem
    // from load.seed but through separate streams.
    Rng body_seeds(load.seed * 0x9e3779b97f4a7c15ull + 1);
    SubmitOptions opts;
    opts.tenant = load.tenant;
    opts.priority = load.priority;
    opts.deadline_s = load.deadline_s;

    LoadStats local;
    std::vector<SubmissionHandle> admitted;
    for (;;) {
      const auto next =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 arrivals.NextDelay()));
      if (next >= end) break;
      std::this_thread::sleep_until(next);

      const check::WorkloadSpec spec =
          check::GenerateSpec(body_seeds.NextUint64());
      Result<check::BuiltWorkload> built = check::BuildWorkload(spec);
      if (!built.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        if (first_error.ok()) first_error = built.status();
        break;
      }
      ++local.offered;
      Result<SubmissionHandle> handle =
          service->Submit(std::move(built->graph), opts);
      if (!handle.ok()) {
        if (handle.status().IsRejectedAdmission()) {
          ++local.rejected;
          continue;
        }
        std::lock_guard<std::mutex> lock(mu);
        if (first_error.ok()) first_error = handle.status();
        break;
      }
      ++local.admitted;
      admitted.push_back(*handle);
      if (load.cancel_every > 0 && local.admitted % load.cancel_every == 0) {
        const Result<bool> cancelled = service->Cancel(*handle);
        if (cancelled.ok() && *cancelled) ++local.cancelled;
      }
    }

    // Drain: every admitted submission must reach a terminal state
    // (the zero-stuck-submissions property the soak test asserts).
    for (const SubmissionHandle& handle : admitted) {
      const Result<runtime::RunReport> ignored = service->Wait(handle);
      (void)ignored;
    }

    std::lock_guard<std::mutex> lock(mu);
    total.offered += local.offered;
    total.admitted += local.admitted;
    total.rejected += local.rejected;
    total.cancelled += local.cancelled;
  };

  std::vector<std::thread> threads;
  threads.reserve(loads.size());
  for (const TenantLoad& load : loads) {
    threads.emplace_back(submitter, std::cref(load));
  }
  for (std::thread& t : threads) t.join();

  if (!first_error.ok()) return first_error;
  return total;
}

}  // namespace taskbench::service
