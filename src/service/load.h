#ifndef TASKBENCH_SERVICE_LOAD_H_
#define TASKBENCH_SERVICE_LOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "service/arrival.h"
#include "service/workflow_service.h"

namespace taskbench::service {

/// One tenant's offered load for RunOpenLoad. The seed drives both
/// the interarrival stream and the per-submission workload specs
/// (check::GenerateSpec), so a load config is fully reproducible.
struct TenantLoad {
  std::string tenant = "default";
  ArrivalOptions arrivals;
  uint64_t seed = 0;
  int priority = 0;
  double deadline_s = 0;
  /// Cancel every Nth admitted submission immediately after
  /// submitting it (0 = never). Exercises the cancel-queued path
  /// under load: each cancellation frees an admission slot.
  int cancel_every = 0;
};

/// What the driver offered vs. what the service took, summed over
/// tenants. Per-tenant outcome detail lives in the ServiceReport.
struct LoadStats {
  int64_t offered = 0;    ///< Submit calls made
  int64_t admitted = 0;   ///< accepted by admission control
  int64_t rejected = 0;   ///< kRejectedAdmission backpressure
  int64_t cancelled = 0;  ///< driver-issued cancellations
};

/// Open-loop driver: one submitter thread per tenant draws seeded
/// interarrival delays and submits generated workloads for
/// `duration_s` wall seconds, never waiting for completions (the
/// offered rate is independent of service throughput — saturation
/// surfaces as admission rejections, not a slowed generator). After
/// the window closes, every admitted submission is waited to a
/// terminal state, so the service is quiescent on return and a
/// ServiceReport taken afterwards has still_queued == 0 and
/// still_running == 0.
Result<LoadStats> RunOpenLoad(WorkflowService* service,
                              const std::vector<TenantLoad>& loads,
                              double duration_s);

}  // namespace taskbench::service

#endif  // TASKBENCH_SERVICE_LOAD_H_
