#ifndef TASKBENCH_SERVICE_WORKFLOW_SERVICE_H_
#define TASKBENCH_SERVICE_WORKFLOW_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "runtime/executor.h"
#include "runtime/metrics.h"
#include "runtime/task_graph.h"

namespace taskbench::service {

/// Per-tenant policy knobs. Zero means "unlimited" for the caps.
struct TenantConfig {
  /// Weighted-fair share: a tenant with weight 2 is dispatched twice
  /// as often as a weight-1 tenant when both have work queued.
  double weight = 1.0;
  /// Max submissions admitted and not yet finished (queued + running)
  /// for this tenant; further Submits get kRejectedAdmission.
  int max_in_flight = 0;
  /// Max submissions waiting in this tenant's queue.
  int max_queued = 0;
  /// Sustained submission rate (token bucket, tokens/second); 0 =
  /// unlimited. Unlike the in-flight caps — which bound *concurrent*
  /// resource use — this bounds submission *frequency*, so a tenant
  /// whose workflows finish instantly still cannot monopolize the
  /// admission path. Over-rate Submits get kRejectedAdmission.
  double rate_per_s = 0;
  /// Bucket ceiling: how many Submits may arrive back-to-back before
  /// the rate gates. 0 = max(1, rate_per_s); ignored when unlimited.
  double burst = 0;
  /// Scheduling policy for this tenant's runs; unset means the
  /// executor's own RunOptions::policy. Forwarded per submission as
  /// RunContext::policy, so tenants sharing one executor can run
  /// different schedulers.
  std::optional<SchedulingPolicy> policy;
};

/// Validates a tenant config at service-configuration time: finite,
/// non-negative rate_per_s and burst (0 = unlimited / derived burst),
/// finite positive weight, non-negative caps. A tenant with an invalid
/// config has every Submit rejected with this status instead of the
/// knob being silently clamped.
Status ValidateTenantConfig(const TenantConfig& config);

struct ServiceOptions {
  /// Runner threads = submissions executing concurrently. Each runner
  /// drives one Executor::Run at a time through the shared executor.
  int num_runners = 2;
  /// Global cap on admitted-and-unfinished submissions (queued +
  /// running, all tenants); 0 = unlimited. This is the backpressure
  /// edge: Submit fails with kRejectedAdmission instead of queueing
  /// without bound.
  int max_in_flight = 0;
  /// Global cap on queued submissions; 0 = unlimited.
  int max_queued = 0;
  /// Per-tenant policy; tenants not listed here get `default_tenant`.
  std::map<std::string, TenantConfig> tenants;
  TenantConfig default_tenant;
  /// Service-wide telemetry sink (distinct from the per-submission
  /// SubmitOptions::metrics, which scopes one run). When set, the
  /// service maintains admission counters (`service.admitted`,
  /// `service.rejected`, `service.rate_limited`, terminal-state
  /// counts), per-tenant `service.tenant.<name>.queued` /
  /// `.in_flight` gauges, and a `service.queue_wait_s` histogram.
  /// The registry is not thread-safe; the service only touches it
  /// under its own mutex. Must outlive the service. Null disables
  /// collection.
  obs::MetricsRegistry* metrics = nullptr;
};

struct SubmitOptions {
  std::string tenant = "default";
  /// Higher priority dequeues first within the tenant's own queue
  /// (fair queueing still arbitrates *between* tenants).
  int priority = 0;
  /// Max seconds the submission may wait in the queue; a submission
  /// dequeued after its deadline finishes with kDeadlineExceeded
  /// without running. 0 = no deadline.
  double deadline_s = 0;
  /// Optional per-submission telemetry sink, forwarded as
  /// RunContext::metrics. Must outlive the submission.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Ticket for one submitted workflow. Copyable; all service calls
/// taking a handle are valid until the service is destroyed.
struct SubmissionHandle {
  uint64_t id = 0;
};

enum class SubmissionState {
  kQueued,   ///< admitted, waiting for a runner
  kRunning,  ///< executing on the shared executor
  kDone,     ///< terminal: completed, failed, cancelled, or expired
};

std::string_view ToString(SubmissionState state);

/// Snapshot returned by Poll. `result` is meaningful only once
/// `state == kDone`.
struct SubmissionStatus {
  SubmissionState state = SubmissionState::kQueued;
  Status result;
};

/// Nearest-rank percentile (p in (0, 1]) over `sorted` ascending
/// samples; 0 when empty. Exposed for the report tests.
double Percentile(const std::vector<double>& sorted, double p);

/// Latency distribution summary: nearest-rank p50/p95/p99 plus the
/// sample count and mean.
struct LatencySummary {
  int64_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// One tenant's slice of a ServiceReport.
struct TenantReport {
  std::string tenant;
  int64_t submitted = 0;     ///< admitted submissions
  int64_t rejected = 0;      ///< kRejectedAdmission at Submit
  int64_t rate_limited = 0;  ///< subset of rejected: over rate_per_s
  int64_t completed = 0;     ///< ran to success
  int64_t failed = 0;      ///< ran and failed (non-cancel statuses)
  int64_t cancelled = 0;   ///< cancelled while queued or running
  int64_t expired = 0;     ///< deadline exceeded before dispatch
  /// Makespan of completed runs: simulated seconds on the simulated
  /// executor (deterministic under a fixed seed), wall-clock seconds
  /// on the thread pool.
  LatencySummary makespan;
  /// Wall-clock seconds from Submit to dispatch (completed, failed
  /// and expired submissions; cancelled-in-queue ones never dispatch).
  LatencySummary queue_wait;
};

/// Service-wide stats snapshot. Tenants are sorted by name.
struct ServiceReport {
  std::vector<TenantReport> tenants;
  int64_t submitted = 0;
  int64_t rejected = 0;
  int64_t rate_limited = 0;
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t cancelled = 0;
  int64_t expired = 0;
  int64_t still_queued = 0;   ///< non-terminal at snapshot time
  int64_t still_running = 0;  ///< non-terminal at snapshot time

  /// Single JSON document (validates under obs::ValidateJson).
  std::string ToJson() const;
};

/// Resident multi-tenant workflow service: the online counterpart of
/// the batch `Executor::Run` path. One shared executor, N runner
/// threads, per-tenant queues with weighted-fair arbitration, and an
/// admission controller that rejects (kRejectedAdmission) instead of
/// queueing without bound.
///
/// Lifecycle of a submission: Submit -> admission check -> tenant
/// queue -> weighted-fair dequeue by a runner (deadline checked here)
/// -> Executor::Run with a per-submission RunContext (cancellation
/// token, metrics sink, storage scope = submission id) -> terminal
/// state. Wait blocks for the terminal state; Poll never blocks;
/// Cancel takes effect immediately for queued submissions and at the
/// executor's next scheduling edge for running ones.
///
/// Works with the thread-pool and simulated executors, whose Run is
/// safe to call concurrently on one instance. The multi-process
/// executor refuses multi-threaded callers by design (workers are
/// forked; see docs/SCALE_OUT.md), so it cannot back a service.
///
/// Thread-safe: all public methods may be called from any thread.
class WorkflowService {
 public:
  /// The executor must outlive the service. `options.num_runners`
  /// threads are started immediately.
  WorkflowService(std::shared_ptr<runtime::Executor> executor,
                  ServiceOptions options);

  /// Cancels everything still pending and joins the runners.
  ~WorkflowService();

  WorkflowService(const WorkflowService&) = delete;
  WorkflowService& operator=(const WorkflowService&) = delete;

  /// Admits `graph` under `opts`, or fails with kRejectedAdmission
  /// when an admission cap is hit (FailedPrecondition after
  /// Shutdown). The graph is consumed either way.
  Result<SubmissionHandle> Submit(runtime::TaskGraph graph,
                                  const SubmitOptions& opts = {});

  /// Blocks until the submission reaches a terminal state; returns
  /// its RunReport on success, its failure status otherwise
  /// (kCancelled, kDeadlineExceeded, or the executor's error).
  Result<runtime::RunReport> Wait(SubmissionHandle handle);

  /// Non-blocking state snapshot.
  Result<SubmissionStatus> Poll(SubmissionHandle handle) const;

  /// Requests cancellation. Returns true when the submission was
  /// still live: a queued one finishes with kCancelled immediately
  /// (freeing its admission slot); a running one is torn down at the
  /// executor's next scheduling edge. False once already terminal.
  /// Idempotent.
  Result<bool> Cancel(SubmissionHandle handle);

  /// Stops admission, cancels all queued and running submissions and
  /// joins the runners. Idempotent; the destructor calls it.
  void Shutdown();

  /// Per-tenant and global stats snapshot.
  ServiceReport Report() const;

  const ServiceOptions& options() const { return options_; }

 private:
  struct Submission;
  struct Tenant;

  void RunnerLoop();
  /// Picks the next submission by weighted fair queueing; null when
  /// every queue is empty. Caller holds mu_.
  Submission* DequeueLocked();
  /// Moves `sub` to kDone with `result`, releases its graph memory
  /// and records stats. Caller holds mu_.
  void FinishLocked(Submission* sub, Status result,
                    runtime::RunReport report);
  Tenant& TenantFor(const std::string& name);
  /// Seconds since the service started — the time axis of the
  /// per-tenant token buckets.
  double NowS() const;
  /// Pushes `tenant`'s queued/in-flight occupancy into the service
  /// metrics registry (no-op when none is configured). Caller holds
  /// mu_.
  void SyncTenantGaugesLocked(const Tenant& tenant);

  std::shared_ptr<runtime::Executor> executor_;
  ServiceOptions options_;
  const std::chrono::steady_clock::time_point origin_ =
      std::chrono::steady_clock::now();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< runners: work or shutdown
  std::condition_variable done_cv_;  ///< waiters: terminal states
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  std::map<uint64_t, std::unique_ptr<Submission>> submissions_;
  uint64_t next_id_ = 1;
  int64_t queued_ = 0;
  int64_t running_ = 0;
  double global_vtime_ = 0;
  bool shutdown_ = false;

  std::vector<std::thread> runners_;
};

}  // namespace taskbench::service

#endif  // TASKBENCH_SERVICE_WORKFLOW_SERVICE_H_
