#include "service/arrival.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace taskbench::service {

namespace {

/// Exponential draw with mean 1/rate. 1 - U lies in (0, 1], so the
/// log argument is never zero.
double DrawExponential(Rng* rng, double rate_hz) {
  return -std::log(1.0 - rng->NextDouble()) / rate_hz;
}

}  // namespace

Result<ArrivalProcess> ParseArrivalProcess(std::string_view name) {
  if (name == "poisson") return ArrivalProcess::kPoisson;
  if (name == "bursty") return ArrivalProcess::kBursty;
  if (name == "heavytail") return ArrivalProcess::kHeavyTail;
  return Status::InvalidArgument(StrFormat(
      "unknown arrival process '%.*s' (expected poisson, bursty, or "
      "heavytail)",
      static_cast<int>(name.size()), name.data()));
}

std::string_view ArrivalProcessName(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kBursty:
      return "bursty";
    case ArrivalProcess::kHeavyTail:
      return "heavytail";
  }
  return "unknown";
}

ArrivalGenerator::ArrivalGenerator(const ArrivalOptions& options,
                                   uint64_t seed)
    : options_(options), rng_(seed) {
  options_.rate_hz = std::max(options_.rate_hz, 1e-9);
  options_.burst_factor = std::max(options_.burst_factor, 1.0);
  options_.burst_fraction =
      std::clamp(options_.burst_fraction, 1e-6, 1.0 - 1e-6);
  options_.burst_mean_s = std::max(options_.burst_mean_s, 1e-9);
  options_.pareto_alpha = std::max(options_.pareto_alpha, 1.0 + 1e-6);
  // Scale the two phase rates so the time-weighted mean is rate_hz:
  // calm * (1 - f) + (B * calm) * f = rate.
  const double f = options_.burst_fraction;
  calm_rate_hz_ =
      options_.rate_hz / (1.0 - f + options_.burst_factor * f);
  burst_rate_hz_ = calm_rate_hz_ * options_.burst_factor;
  // Start in a calm phase of the configured mean duration.
  phase_left_s_ = DrawExponential(
      &rng_, f / (options_.burst_mean_s * (1.0 - f)));
}

double ArrivalGenerator::NextDelay() {
  switch (options_.process) {
    case ArrivalProcess::kPoisson:
      return DrawExponential(&rng_, options_.rate_hz);
    case ArrivalProcess::kHeavyTail: {
      // Pareto(alpha, xm) with xm fixed by mean = alpha*xm/(alpha-1)
      // = 1/rate. Inverse-CDF sampling off the same uniform stream.
      const double alpha = options_.pareto_alpha;
      const double xm = (alpha - 1.0) / (alpha * options_.rate_hz);
      return xm / std::pow(1.0 - rng_.NextDouble(), 1.0 / alpha);
    }
    case ArrivalProcess::kBursty: {
      // Modulated Poisson: exponential interarrivals at the current
      // phase's rate; a draw crossing the phase boundary consumes the
      // remaining phase time and redraws in the next phase (valid by
      // memorylessness). Phase durations are themselves exponential
      // with means burst_mean_s and burst_mean_s * (1-f)/f, giving
      // the configured long-run burst fraction f.
      const double f = options_.burst_fraction;
      const double calm_mean_s = options_.burst_mean_s * (1.0 - f) / f;
      double total = 0;
      // Bounded phase crossings: degenerate shapes (phase durations
      // vastly shorter than one interarrival) would otherwise cross
      // ~rate_phase/rate_arrival phases per draw — effectively
      // forever. Past the bound the process is indistinguishable from
      // Poisson at the mean rate, so finish the draw that way.
      for (int crossings = 0; crossings < 4096; ++crossings) {
        const double rate = in_burst_ ? burst_rate_hz_ : calm_rate_hz_;
        const double d = DrawExponential(&rng_, rate);
        if (d <= phase_left_s_) {
          phase_left_s_ -= d;
          return total + d;
        }
        total += phase_left_s_;
        in_burst_ = !in_burst_;
        phase_left_s_ = DrawExponential(
            &rng_, 1.0 / (in_burst_ ? options_.burst_mean_s : calm_mean_s));
      }
      return total + DrawExponential(&rng_, options_.rate_hz);
    }
  }
  return DrawExponential(&rng_, options_.rate_hz);
}

}  // namespace taskbench::service
