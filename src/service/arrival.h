#ifndef TASKBENCH_SERVICE_ARRIVAL_H_
#define TASKBENCH_SERVICE_ARRIVAL_H_

#include <cstdint>
#include <string_view>

#include "common/random.h"
#include "common/result.h"

namespace taskbench::service {

/// Interarrival processes for the open-loop load generator. Open-loop
/// means arrivals do not wait for completions — the generator keeps
/// submitting at its configured rate even when the service is
/// saturated, which is exactly the regime where admission control and
/// tail latency matter.
enum class ArrivalProcess {
  kPoisson,    ///< exponential interarrivals (memoryless baseline)
  kBursty,     ///< two-state modulated Poisson: calm / burst phases
  kHeavyTail,  ///< Pareto interarrivals (rare long gaps, dense runs)
};

/// Parses an `--arrivals` value: "poisson" | "bursty" | "heavytail".
Result<ArrivalProcess> ParseArrivalProcess(std::string_view name);

/// The canonical flag spelling of `process`.
std::string_view ArrivalProcessName(ArrivalProcess process);

/// All three processes are parameterized to the same mean rate, so
/// swapping the process changes only the arrival *pattern*, never the
/// offered load.
struct ArrivalOptions {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  double rate_hz = 10.0;  ///< mean arrivals per second

  // kBursty: phases alternate calm <-> burst with exponential phase
  // durations. Rates are scaled so the time-weighted mean stays
  // rate_hz: burst phases run at burst_factor x the calm rate.
  double burst_factor = 8.0;    ///< burst rate / calm rate
  double burst_fraction = 0.2;  ///< long-run fraction of time in burst
  double burst_mean_s = 0.5;    ///< mean burst phase duration

  // kHeavyTail: Pareto(alpha, xm) interarrivals with xm chosen so the
  // mean is 1/rate_hz. Requires alpha > 1 (finite mean).
  double pareto_alpha = 1.5;
};

/// Seeded interarrival stream: the same (options, seed) pair yields
/// the same delay sequence on every platform — the property the
/// reproducibility tests and the committed bench configs rely on.
class ArrivalGenerator {
 public:
  ArrivalGenerator(const ArrivalOptions& options, uint64_t seed);

  /// Seconds until the next arrival. Always finite and >= 0.
  double NextDelay();

 private:
  ArrivalOptions options_;
  Rng rng_;
  double calm_rate_hz_ = 0;   ///< kBursty: rate in the calm phase
  double burst_rate_hz_ = 0;  ///< kBursty: rate in the burst phase
  bool in_burst_ = false;
  double phase_left_s_ = 0;   ///< kBursty: time left in current phase
};

}  // namespace taskbench::service

#endif  // TASKBENCH_SERVICE_ARRIVAL_H_
