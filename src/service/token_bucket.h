#ifndef TASKBENCH_SERVICE_TOKEN_BUCKET_H_
#define TASKBENCH_SERVICE_TOKEN_BUCKET_H_

#include <algorithm>

namespace taskbench::service {

/// Classic token bucket: `rate_per_s` tokens drip in continuously up
/// to a ceiling of `burst`; each admitted request consumes one. Time
/// is an explicit parameter (seconds on any monotonic axis) rather
/// than a clock read, so policy code stays deterministic and testable
/// — the caller decides what "now" means (the WorkflowService passes
/// seconds since its own start; tests pass literals).
///
/// Not thread-safe: the service mutates it under its own mutex.
class TokenBucket {
 public:
  /// A default-constructed bucket is unlimited (TryAcquire always
  /// succeeds) — the "no rate limit configured" case costs nothing.
  TokenBucket() = default;

  /// `rate_per_s <= 0` means unlimited. The bucket starts full, so a
  /// fresh tenant can burst immediately.
  TokenBucket(double rate_per_s, double burst, double now_s)
      : rate_(rate_per_s),
        burst_(std::max(burst, 1.0)),
        tokens_(std::max(burst, 1.0)),
        last_s_(now_s) {}

  bool unlimited() const { return rate_ <= 0; }

  /// Consumes one token at time `now_s` if available. Monotonicity is
  /// not assumed: a `now_s` before the last call refills nothing but
  /// still works (the bucket never loses banked tokens).
  bool TryAcquire(double now_s) {
    if (unlimited()) return true;
    Refill(now_s);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  /// Tokens available at `now_s`, for introspection/tests.
  double TokensAt(double now_s) {
    if (unlimited()) return burst_;
    Refill(now_s);
    return tokens_;
  }

 private:
  void Refill(double now_s) {
    if (now_s > last_s_) {
      tokens_ = std::min(burst_, tokens_ + (now_s - last_s_) * rate_);
      last_s_ = now_s;
    }
  }

  double rate_ = 0;    ///< tokens per second; <= 0 = unlimited
  double burst_ = 0;   ///< bucket ceiling (>= 1 once rate-limited)
  double tokens_ = 0;  ///< available now (as of last_s_)
  double last_s_ = 0;  ///< time of the last refill
};

}  // namespace taskbench::service

#endif  // TASKBENCH_SERVICE_TOKEN_BUCKET_H_
