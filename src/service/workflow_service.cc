#include "service/workflow_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "service/token_bucket.h"

namespace taskbench::service {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point origin) {
  return std::chrono::duration<double>(Clock::now() - origin).count();
}

LatencySummary Summarize(std::vector<double> samples) {
  LatencySummary s;
  s.count = static_cast<int64_t>(samples.size());
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  s.p50 = Percentile(samples, 0.50);
  s.p95 = Percentile(samples, 0.95);
  s.p99 = Percentile(samples, 0.99);
  return s;
}

void AppendLatencyJson(std::ostringstream* out, const char* name,
                       const LatencySummary& s) {
  *out << '"' << name << "\": {\"count\": " << s.count
       << ", \"mean_s\": " << s.mean << ", \"p50_s\": " << s.p50
       << ", \"p95_s\": " << s.p95 << ", \"p99_s\": " << s.p99 << '}';
}

}  // namespace

std::string_view ToString(SubmissionState state) {
  switch (state) {
    case SubmissionState::kQueued:
      return "queued";
    case SubmissionState::kRunning:
      return "running";
    case SubmissionState::kDone:
      return "done";
  }
  return "unknown";
}

Status ValidateTenantConfig(const TenantConfig& config) {
  // The rate limiter knobs are validated instead of clamped: a
  // negative or NaN rate once slipped through to TokenBucket, whose
  // refill arithmetic turned it into an always-empty (or NaN-poisoned)
  // bucket that silently rejected every Submit.
  if (std::isnan(config.rate_per_s) || config.rate_per_s < 0) {
    return Status::InvalidArgument(StrFormat(
        "TenantConfig.rate_per_s must be >= 0 (0 = unlimited), got %g",
        config.rate_per_s));
  }
  if (std::isnan(config.burst) || config.burst < 0) {
    return Status::InvalidArgument(StrFormat(
        "TenantConfig.burst must be >= 0 (0 = derived from rate), got %g",
        config.burst));
  }
  if (std::isinf(config.rate_per_s) || std::isinf(config.burst)) {
    return Status::InvalidArgument(
        "TenantConfig rate_per_s/burst must be finite");
  }
  if (!(config.weight > 0) || std::isinf(config.weight)) {
    return Status::InvalidArgument(StrFormat(
        "TenantConfig.weight must be a finite positive number, got %g",
        config.weight));
  }
  if (config.max_in_flight < 0 || config.max_queued < 0) {
    return Status::InvalidArgument(
        "TenantConfig.max_in_flight/max_queued must be >= 0");
  }
  return Status::OK();
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = std::ceil(p * static_cast<double>(sorted.size()));
  const auto idx = static_cast<size_t>(std::max(rank, 1.0)) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// One admitted workflow, owned by the service until it is destroyed.
/// The graph is released (moved-from) at the terminal transition so a
/// resident service does not pin every past submission's matrices.
struct WorkflowService::Submission {
  uint64_t id = 0;
  Tenant* tenant = nullptr;
  int priority = 0;
  double deadline_s = 0;
  obs::MetricsRegistry* metrics = nullptr;
  Clock::time_point submitted_at;
  runtime::TaskGraph graph;
  runtime::CancellationToken cancel;
  SubmissionState state = SubmissionState::kQueued;
  Status result;
  runtime::RunReport report;
  double queue_wait_s = 0;
};

struct WorkflowService::Tenant {
  std::string name;
  TenantConfig config;
  /// ValidateTenantConfig(config), computed once when the tenant is
  /// first seen; a non-OK status fails every Submit for this tenant.
  Status config_status;
  /// Submission-rate limiter (unlimited unless config.rate_per_s > 0).
  TokenBucket bucket;
  /// Weighted-fair virtual time: bumped by 1/weight per dispatch; the
  /// runner always dequeues the eligible tenant with the smallest
  /// vtime (ties: lexicographic name, via the ordered tenant map).
  double vtime = 0;
  /// Queued submissions, ordered by (priority desc, id asc).
  std::deque<Submission*> queue;
  /// Admitted and not yet terminal (queued + running).
  int64_t in_flight = 0;

  int64_t submitted = 0;
  int64_t rejected = 0;
  int64_t rate_limited = 0;  ///< subset of rejected: token bucket dry
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t cancelled = 0;
  int64_t expired = 0;
  std::vector<double> makespans;
  std::vector<double> queue_waits;
};

WorkflowService::WorkflowService(std::shared_ptr<runtime::Executor> executor,
                                 ServiceOptions options)
    : executor_(std::move(executor)), options_(std::move(options)) {
  TB_CHECK(executor_ != nullptr);
  const int runners = std::max(1, options_.num_runners);
  runners_.reserve(static_cast<size_t>(runners));
  for (int i = 0; i < runners; ++i) {
    runners_.emplace_back([this] { RunnerLoop(); });
  }
}

WorkflowService::~WorkflowService() { Shutdown(); }

WorkflowService::Tenant& WorkflowService::TenantFor(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    auto tenant = std::make_unique<Tenant>();
    tenant->name = name;
    const auto cfg = options_.tenants.find(name);
    tenant->config = cfg != options_.tenants.end() ? cfg->second
                                                   : options_.default_tenant;
    tenant->config_status = ValidateTenantConfig(tenant->config);
    if (tenant->config_status.ok() && tenant->config.rate_per_s > 0) {
      const double burst = tenant->config.burst > 0
                               ? tenant->config.burst
                               : std::max(1.0, tenant->config.rate_per_s);
      tenant->bucket = TokenBucket(tenant->config.rate_per_s, burst, NowS());
    }
    it = tenants_.emplace(name, std::move(tenant)).first;
  }
  return *it->second;
}

double WorkflowService::NowS() const { return SecondsSince(origin_); }

void WorkflowService::SyncTenantGaugesLocked(const Tenant& tenant) {
  if (options_.metrics == nullptr) return;
  options_.metrics
      ->gauge(StrFormat("service.tenant.%s.queued", tenant.name.c_str()))
      ->Set(static_cast<double>(tenant.queue.size()));
  options_.metrics
      ->gauge(StrFormat("service.tenant.%s.in_flight", tenant.name.c_str()))
      ->Set(static_cast<double>(tenant.in_flight));
}

Result<SubmissionHandle> WorkflowService::Submit(runtime::TaskGraph graph,
                                                 const SubmitOptions& opts) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    return Status::FailedPrecondition(
        "WorkflowService is shut down; no new submissions");
  }
  Tenant& tenant = TenantFor(opts.tenant);
  // A misconfigured tenant is a caller error, not backpressure: the
  // config status is surfaced verbatim (no kRejectedAdmission, no
  // rejected-counter bump) so it cannot be mistaken for load.
  if (!tenant.config_status.ok()) {
    return Status::InvalidArgument(
        StrFormat("tenant '%s' misconfigured: %s", opts.tenant.c_str(),
                  tenant.config_status.message().c_str()));
  }
  // Admission control: reject (backpressure the client) rather than
  // queue without bound. Every cap is checked before any state is
  // mutated, so a rejected Submit leaves no trace but the counter.
  const auto reject = [&](const char* what, long long have,
                          int cap) -> Status {
    ++tenant.rejected;
    if (options_.metrics != nullptr) {
      options_.metrics->counter("service.rejected")->Add();
    }
    return Status::RejectedAdmission(StrFormat(
        "tenant '%s' rejected: %s at capacity (%lld of %d)",
        opts.tenant.c_str(), what, have, cap));
  };
  if (options_.max_in_flight > 0 &&
      queued_ + running_ >= options_.max_in_flight) {
    return reject("service in-flight submissions", queued_ + running_,
                  options_.max_in_flight);
  }
  if (options_.max_queued > 0 && queued_ >= options_.max_queued) {
    return reject("service queue", queued_, options_.max_queued);
  }
  if (tenant.config.max_in_flight > 0 &&
      tenant.in_flight >= tenant.config.max_in_flight) {
    return reject("tenant in-flight submissions", tenant.in_flight,
                  tenant.config.max_in_flight);
  }
  if (tenant.config.max_queued > 0 &&
      static_cast<int64_t>(tenant.queue.size()) >= tenant.config.max_queued) {
    return reject("tenant queue",
                  static_cast<long long>(tenant.queue.size()),
                  tenant.config.max_queued);
  }
  // Rate limiting is checked last: a Submit that would be rejected by
  // a capacity cap anyway must not also burn a token.
  if (!tenant.bucket.TryAcquire(NowS())) {
    ++tenant.rejected;
    ++tenant.rate_limited;
    if (options_.metrics != nullptr) {
      options_.metrics->counter("service.rejected")->Add();
      options_.metrics->counter("service.rate_limited")->Add();
    }
    return Status::RejectedAdmission(StrFormat(
        "tenant '%s' rejected: over submission rate (%.3g/s, burst %.3g)",
        opts.tenant.c_str(), tenant.config.rate_per_s,
        tenant.config.burst > 0 ? tenant.config.burst
                                : std::max(1.0, tenant.config.rate_per_s)));
  }

  auto sub = std::make_unique<Submission>();
  sub->id = next_id_++;
  sub->tenant = &tenant;
  sub->priority = opts.priority;
  sub->deadline_s = opts.deadline_s;
  sub->metrics = opts.metrics;
  sub->submitted_at = Clock::now();
  sub->graph = std::move(graph);
  Submission* raw = sub.get();

  // A tenant re-entering the active set resumes at the current global
  // virtual time — it must not bank credit for the time it was idle.
  if (tenant.queue.empty()) {
    tenant.vtime = std::max(tenant.vtime, global_vtime_);
  }
  const auto pos = std::upper_bound(
      tenant.queue.begin(), tenant.queue.end(), raw,
      [](const Submission* a, const Submission* b) {
        return a->priority > b->priority;
      });
  tenant.queue.insert(pos, raw);
  submissions_.emplace(raw->id, std::move(sub));
  ++tenant.in_flight;
  ++tenant.submitted;
  ++queued_;
  if (options_.metrics != nullptr) {
    options_.metrics->counter("service.admitted")->Add();
  }
  SyncTenantGaugesLocked(tenant);
  work_cv_.notify_one();
  return SubmissionHandle{raw->id};
}

WorkflowService::Submission* WorkflowService::DequeueLocked() {
  Tenant* best = nullptr;
  for (auto& [name, tenant] : tenants_) {
    if (tenant->queue.empty()) continue;
    if (best == nullptr || tenant->vtime < best->vtime) best = tenant.get();
  }
  if (best == nullptr) return nullptr;
  Submission* sub = best->queue.front();
  best->queue.pop_front();
  global_vtime_ = best->vtime;
  best->vtime += 1.0 / std::max(best->config.weight, 1e-9);
  return sub;
}

void WorkflowService::FinishLocked(Submission* sub, Status result,
                                   runtime::RunReport report) {
  sub->state = SubmissionState::kDone;
  sub->result = std::move(result);
  sub->report = std::move(report);
  sub->graph = runtime::TaskGraph();  // release the matrices now
  Tenant& tenant = *sub->tenant;
  --tenant.in_flight;
  obs::MetricsRegistry* metrics = options_.metrics;
  const auto record_wait = [&] {
    tenant.queue_waits.push_back(sub->queue_wait_s);
    if (metrics != nullptr) {
      metrics->histogram("service.queue_wait_s")->Record(sub->queue_wait_s);
    }
  };
  if (sub->result.ok()) {
    ++tenant.completed;
    if (metrics != nullptr) metrics->counter("service.completed")->Add();
    tenant.makespans.push_back(sub->report.makespan);
    record_wait();
  } else if (sub->result.IsDeadlineExceeded()) {
    ++tenant.expired;
    if (metrics != nullptr) metrics->counter("service.expired")->Add();
    record_wait();
  } else if (sub->result.IsCancelled()) {
    ++tenant.cancelled;
    if (metrics != nullptr) metrics->counter("service.cancelled")->Add();
  } else {
    ++tenant.failed;
    if (metrics != nullptr) metrics->counter("service.failed")->Add();
    record_wait();
  }
  SyncTenantGaugesLocked(tenant);
  done_cv_.notify_all();
}

void WorkflowService::RunnerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return shutdown_ || queued_ > 0; });
    if (queued_ == 0) {
      if (shutdown_) return;
      continue;
    }
    Submission* sub = DequeueLocked();
    if (sub == nullptr) continue;
    --queued_;
    SyncTenantGaugesLocked(*sub->tenant);
    sub->queue_wait_s = SecondsSince(sub->submitted_at);

    // Shutdown and deadlines are decided at dispatch time: the
    // submission never touches the executor.
    if (shutdown_) {
      FinishLocked(sub, Status::Cancelled("service shut down"),
                   runtime::RunReport{});
      continue;
    }
    if (sub->deadline_s > 0 && sub->queue_wait_s > sub->deadline_s) {
      FinishLocked(sub,
                   Status::DeadlineExceeded(StrFormat(
                       "queued %.3fs, deadline %.3fs", sub->queue_wait_s,
                       sub->deadline_s)),
                   runtime::RunReport{});
      continue;
    }

    sub->state = SubmissionState::kRunning;
    ++running_;
    runtime::RunContext ctx;
    ctx.cancel = &sub->cancel;
    ctx.metrics = sub->metrics;
    ctx.scope = sub->id;
    ctx.policy = sub->tenant->config.policy;
    lock.unlock();
    Result<runtime::RunReport> run = executor_->Run(sub->graph, ctx);
    lock.lock();
    --running_;
    if (run.ok()) {
      FinishLocked(sub, Status::OK(), std::move(*run));
    } else {
      FinishLocked(sub, run.status(), runtime::RunReport{});
    }
  }
}

Result<runtime::RunReport> WorkflowService::Wait(SubmissionHandle handle) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = submissions_.find(handle.id);
  if (it == submissions_.end()) {
    return Status::InvalidArgument(StrFormat(
        "unknown submission %llu",
        static_cast<unsigned long long>(handle.id)));
  }
  Submission* sub = it->second.get();
  done_cv_.wait(lock, [&] { return sub->state == SubmissionState::kDone; });
  if (!sub->result.ok()) return sub->result;
  return sub->report;
}

Result<SubmissionStatus> WorkflowService::Poll(SubmissionHandle handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = submissions_.find(handle.id);
  if (it == submissions_.end()) {
    return Status::InvalidArgument(StrFormat(
        "unknown submission %llu",
        static_cast<unsigned long long>(handle.id)));
  }
  SubmissionStatus status;
  status.state = it->second->state;
  status.result = it->second->result;
  return status;
}

Result<bool> WorkflowService::Cancel(SubmissionHandle handle) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = submissions_.find(handle.id);
  if (it == submissions_.end()) {
    return Status::InvalidArgument(StrFormat(
        "unknown submission %llu",
        static_cast<unsigned long long>(handle.id)));
  }
  Submission* sub = it->second.get();
  if (sub->state == SubmissionState::kDone) return false;
  sub->cancel.Cancel();
  if (sub->state == SubmissionState::kQueued) {
    // Remove from the tenant queue and finish immediately: the
    // admission slot frees right here, so a backpressured client's
    // next Submit can be admitted without waiting for a runner.
    auto& queue = sub->tenant->queue;
    queue.erase(std::find(queue.begin(), queue.end(), sub));
    --queued_;
    FinishLocked(sub, Status::Cancelled("cancelled while queued"),
                 runtime::RunReport{});
  }
  // A running submission tears down at the executor's next scheduling
  // edge; its runner performs the terminal transition.
  return true;
}

void WorkflowService::Shutdown() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    for (auto& [id, sub] : submissions_) {
      if (sub->state == SubmissionState::kDone) continue;
      sub->cancel.Cancel();
      if (sub->state == SubmissionState::kQueued) {
        auto& queue = sub->tenant->queue;
        queue.erase(std::find(queue.begin(), queue.end(), sub.get()));
        --queued_;
        FinishLocked(sub.get(), Status::Cancelled("service shut down"),
                     runtime::RunReport{});
      }
    }
    work_cv_.notify_all();
    // Claim the runner threads under the lock so concurrent Shutdown
    // calls never join the same thread twice.
    to_join.swap(runners_);
  }
  for (std::thread& t : to_join) t.join();
}

ServiceReport WorkflowService::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceReport report;
  report.still_queued = queued_;
  report.still_running = running_;
  for (const auto& [name, tenant] : tenants_) {
    TenantReport t;
    t.tenant = name;
    t.submitted = tenant->submitted;
    t.rejected = tenant->rejected;
    t.rate_limited = tenant->rate_limited;
    t.completed = tenant->completed;
    t.failed = tenant->failed;
    t.cancelled = tenant->cancelled;
    t.expired = tenant->expired;
    t.makespan = Summarize(tenant->makespans);
    t.queue_wait = Summarize(tenant->queue_waits);
    report.submitted += t.submitted;
    report.rejected += t.rejected;
    report.rate_limited += t.rate_limited;
    report.completed += t.completed;
    report.failed += t.failed;
    report.cancelled += t.cancelled;
    report.expired += t.expired;
    report.tenants.push_back(std::move(t));
  }
  return report;
}

std::string ServiceReport::ToJson() const {
  std::ostringstream out;
  out << "{\"submitted\": " << submitted << ", \"rejected\": " << rejected
      << ", \"rate_limited\": " << rate_limited
      << ", \"completed\": " << completed << ", \"failed\": " << failed
      << ", \"cancelled\": " << cancelled << ", \"expired\": " << expired
      << ", \"still_queued\": " << still_queued
      << ", \"still_running\": " << still_running << ", \"tenants\": [";
  for (size_t i = 0; i < tenants.size(); ++i) {
    const TenantReport& t = tenants[i];
    if (i > 0) out << ", ";
    out << "{\"tenant\": \"" << JsonEscape(t.tenant)
        << "\", \"submitted\": " << t.submitted
        << ", \"rejected\": " << t.rejected
        << ", \"rate_limited\": " << t.rate_limited
        << ", \"completed\": " << t.completed << ", \"failed\": " << t.failed
        << ", \"cancelled\": " << t.cancelled
        << ", \"expired\": " << t.expired << ", ";
    AppendLatencyJson(&out, "makespan", t.makespan);
    out << ", ";
    AppendLatencyJson(&out, "queue_wait", t.queue_wait);
    out << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace taskbench::service
