// The paper's future work, end to end: train the learned performance
// model on a sweep of executed experiments (Section 5.4.3), use it to
// pick a configuration without simulating the candidates, then run
// that workload under hybrid CPU+GPU placement — the "resource
// wastage" challenge solved by cost-aware spilling.
//
//   $ ./hybrid_and_predict

#include <cstdio>

#include "algos/kmeans.h"
#include "analysis/experiment.h"
#include "analysis/factor_space.h"
#include "analysis/predictor.h"
#include "analysis/report.h"
#include "common/logging.h"
#include "common/strings.h"
#include "data/generators.h"
#include "runtime/simulated_executor.h"

namespace tb = taskbench;
using tb::analysis::Algorithm;
using tb::analysis::ExperimentConfig;

int main() {
  // --- 1. Gather training experience: a modest executed sweep. ---
  std::printf("training the performance model on a K-means/Matmul "
              "sweep...\n");
  std::vector<tb::analysis::ExperimentResult> samples;
  for (tb::Processor proc : {tb::Processor::kCpu, tb::Processor::kGpu}) {
    for (int64_t g : {2, 4, 8, 16}) {
      ExperimentConfig mm;
      mm.algorithm = Algorithm::kMatmul;
      mm.dataset = tb::data::PaperDatasets::Matmul8GB();
      mm.grid_rows = mm.grid_cols = g;
      mm.processor = proc;
      auto r = tb::analysis::RunExperiment(mm);
      TB_CHECK_OK(r.status());
      samples.push_back(std::move(*r));
    }
    for (int64_t g : {8, 32, 64, 128, 256}) {
      ExperimentConfig km;
      km.algorithm = Algorithm::kKMeans;
      km.dataset = tb::data::PaperDatasets::KMeans10GB();
      km.grid_rows = g;
      km.iterations = 1;
      km.processor = proc;
      auto r = tb::analysis::RunExperiment(km);
      TB_CHECK_OK(r.status());
      samples.push_back(std::move(*r));
    }
  }
  auto predictor = tb::analysis::PerformancePredictor::Train(samples);
  TB_CHECK_OK(predictor.status());
  std::printf("trained on %zu executed samples\n\n",
              predictor->training_size());

  // --- 2. Ask the model for a configuration (no simulation). ---
  ExperimentConfig base;
  base.algorithm = Algorithm::kKMeans;
  base.dataset = tb::data::PaperDatasets::KMeans10GB();
  base.iterations = 1;
  auto choice = predictor->PredictBest(base, tb::analysis::KMeansPaperGrids());
  TB_CHECK_OK(choice.status());
  std::printf("model's pick for K-means 10 GB: grid %lldx%lld on %s "
              "(predicted %.2f s)\n\n",
              static_cast<long long>(choice->grid_rows),
              static_cast<long long>(choice->grid_cols),
              tb::ToString(choice->processor).c_str(),
              choice->predicted_seconds);

  // --- 3. Execute the pick under hybrid placement. ---
  auto spec = tb::data::GridSpec::CreateFromGridDim(
      base.dataset, choice->grid_rows, choice->grid_cols);
  TB_CHECK_OK(spec.status());
  tb::algos::KMeansOptions koptions;
  koptions.iterations = 1;
  koptions.processor = tb::Processor::kGpu;  // accelerable; hybrid decides
  auto wf = tb::algos::BuildKMeans(*spec, koptions);
  TB_CHECK_OK(wf.status());

  tb::analysis::TextTable table({"mode", "makespan", "CPU tasks",
                                 "GPU tasks"});
  for (const bool hybrid : {false, true}) {
    tb::runtime::RunOptions exec;
    exec.hybrid = hybrid;
    tb::runtime::SimulatedExecutor executor(tb::hw::MinotauroCluster(),
                                            exec);
    auto report = executor.Execute(wf->graph);
    TB_CHECK_OK(report.status());
    int cpu = 0, gpu = 0;
    for (const auto& rec : report->records) {
      (rec.processor == tb::Processor::kCpu ? cpu : gpu)++;
    }
    table.AddRow({hybrid ? "hybrid (spill to CPUs)" : "GPU-only",
                  tb::StrFormat("%.2f s", report->makespan),
                  tb::StrFormat("%d", cpu), tb::StrFormat("%d", gpu)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "The model replaces exhaustive reruns; hybrid placement keeps the\n"
      "otherwise-idle CPU cores busy and removes the GPU OOM cliff.\n");
  return 0;
}
