// Fully parallelizable workflow deep-dive: builds the blocked Matmul
// DAG, exports it as Graphviz DOT, runs it for real through the
// file-backed storage layer (exercising true serialization), and
// breaks the cost model down stage by stage for CPU vs GPU.
//
//   $ ./matmul_workflow [--dot]
//
// With --dot, prints the DAG in DOT format (pipe into `dot -Tpng`).

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "algos/matmul.h"
#include "analysis/report.h"
#include "common/logging.h"
#include "common/strings.h"
#include "data/generators.h"
#include "hw/cluster.h"
#include "perf/cost_model.h"
#include "runtime/thread_pool_executor.h"
#include "storage/block_storage.h"

namespace tb = taskbench;

int main(int argc, char** argv) {
  const bool dot_only = argc > 1 && std::strcmp(argv[1], "--dot") == 0;

  auto spec = tb::data::GridSpec::CreateFromGridDim(
      tb::data::DatasetSpec{"demo", 192, 192}, 4, 4);
  TB_CHECK_OK(spec.status());
  tb::algos::MatmulOptions options;
  options.materialize = true;
  auto wf = tb::algos::BuildMatmul(*spec, options);
  TB_CHECK_OK(wf.status());

  if (dot_only) {
    std::printf("%s", wf->graph.ToDot().c_str());
    return 0;
  }

  std::printf("Matmul 4x4 grid: %lld tasks (64 matmul_func + 48 add_func),"
              "\nwide-and-shallow DAG: width %lld, height %lld "
              "(Figure 6b shape)\n\n",
              static_cast<long long>(wf->graph.num_tasks()),
              static_cast<long long>(wf->graph.MaxWidth()),
              static_cast<long long>(wf->graph.MaxHeight()));

  // Run through real file-backed storage: every block is serialized
  // to disk and deserialized back, like a COMPSs worker would.
  const auto dir = std::filesystem::temp_directory_path() / "tb_matmul_demo";
  std::filesystem::remove_all(dir);
  auto storage = tb::storage::FileStorage::Open(dir.string());
  TB_CHECK_OK(storage.status());
  tb::runtime::RunOptions exec_options;
  exec_options.num_threads = 4;
  exec_options.use_storage = true;
  std::shared_ptr<tb::storage::BlockStorage> store = std::move(*storage);
  tb::runtime::ThreadPoolExecutor executor(exec_options, store);
  auto report = executor.Execute(wf->graph);
  TB_CHECK_OK(report.status());
  std::printf("real run through file storage: %.3f ms, "
              "%.3f ms total deserialization, %.3f ms serialization\n\n",
              report->makespan * 1e3,
              report->TotalDeserializeTime() * 1e3,
              report->TotalSerializeTime() * 1e3);
  std::filesystem::remove_all(dir);

  // Analytic per-task stage decomposition at Minotauro scale.
  const tb::perf::CostModel model(tb::hw::MinotauroCluster());
  std::printf("cost-model stage decomposition, 2048 MB blocks "
              "(N = 16384):\n");
  tb::analysis::TextTable table(
      {"task", "proc", "deser", "parallel frac", "comm", "ser"});
  for (const bool gpu : {false, true}) {
    for (const char* type : {"matmul_func", "add_func"}) {
      const tb::perf::TaskCost cost =
          std::strcmp(type, "matmul_func") == 0
              ? tb::algos::MatmulFuncCost(16384, 16384, 16384, false)
              : tb::algos::AddFuncCost(16384, 16384);
      auto stages = model.EstimateStages(
          cost, gpu ? tb::Processor::kGpu : tb::Processor::kCpu,
          tb::hw::StorageArchitecture::kSharedDisk);
      TB_CHECK_OK(stages.status());
      table.AddRow({type, gpu ? "GPU" : "CPU",
                    tb::HumanSeconds(stages->deserialize),
                    tb::HumanSeconds(stages->parallel_fraction),
                    tb::HumanSeconds(stages->cpu_gpu_comm),
                    tb::HumanSeconds(stages->serialize)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nmatmul_func (O(N^3)) gains on GPU; add_func (O(N)) is "
              "dominated by CPU-GPU communication (Section 5.2.1).\n");
  return 0;
}
