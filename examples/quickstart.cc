// Quickstart: build a distributed task-based workflow, run it for
// real on host threads, then replay the same workflow on the
// simulated Minotauro cluster to compare CPU vs GPU execution.
//
//   $ ./quickstart
//
// Walks through the three layers of the library:
//   1. data: partition a matrix into a blocked ds_array-style grid.
//   2. runtime: submit tasks with IN/OUT annotations; the DAG builder
//      derives dependencies; the thread-pool executor computes real
//      results.
//   3. analysis: the simulated executor + cost model predict how the
//      same DAG behaves on a 128-core / 32-GPU cluster.

#include <cstdio>

#include "algos/matmul.h"
#include "analysis/experiment.h"
#include "analysis/report.h"
#include "common/logging.h"
#include "common/strings.h"
#include "data/generators.h"
#include "hw/cluster.h"
#include "runtime/simulated_executor.h"
#include "runtime/thread_pool_executor.h"

namespace tb = taskbench;

int main() {
  // --- 1. Partition a 256x256 matrix into a 4x4 grid of blocks. ---
  auto spec = tb::data::GridSpec::CreateFromGridDim(
      tb::data::DatasetSpec{"demo", 256, 256}, 4, 4);
  TB_CHECK_OK(spec.status());
  std::printf("dataset: 256x256 float64, grid %s, block %lldx%lld\n",
              spec->GridDimString().c_str(),
              static_cast<long long>(spec->block_rows()),
              static_cast<long long>(spec->block_cols()));

  // --- 2. Build the blocked matmul workflow with real kernels. ---
  tb::algos::MatmulOptions options;
  options.materialize = true;
  auto wf = tb::algos::BuildMatmul(*spec, options);
  TB_CHECK_OK(wf.status());
  std::printf("workflow: %lld tasks, DAG width %lld, height %lld\n",
              static_cast<long long>(wf->graph.num_tasks()),
              static_cast<long long>(wf->graph.MaxWidth()),
              static_cast<long long>(wf->graph.MaxHeight()));

  tb::runtime::RunOptions exec_options;
  exec_options.num_threads = 4;
  tb::runtime::ThreadPoolExecutor executor(exec_options);
  auto report = executor.Execute(wf->graph);
  TB_CHECK_OK(report.status());
  std::printf("real execution: %zu tasks in %.3f ms (4 worker threads)\n",
              report->records.size(), report->makespan * 1e3);

  // Verify one output block against a direct dense computation.
  auto c00 = executor.FetchData(wf->graph, wf->c[0][0]);
  TB_CHECK_OK(c00.status());
  std::printf("C[0][0] is %lldx%lld, sum %.3f\n",
              static_cast<long long>(c00->rows()),
              static_cast<long long>(c00->cols()), c00->Sum());

  // --- 3. Simulate the paper's 8 GB workload on Minotauro. ---
  std::printf("\nsimulated 8 GB Matmul on Minotauro "
              "(8 nodes x 16 cores + 4 K80s):\n");
  tb::analysis::TextTable table(
      {"grid", "block", "CPU makespan", "GPU makespan", "GPU speedup"});
  for (int64_t grid : {2, 4, 8, 16}) {
    tb::analysis::ExperimentConfig config;
    config.algorithm = tb::analysis::Algorithm::kMatmul;
    config.dataset = tb::data::PaperDatasets::Matmul8GB();
    config.grid_rows = config.grid_cols = grid;

    config.processor = tb::Processor::kCpu;
    auto cpu = tb::analysis::RunExperiment(config);
    TB_CHECK_OK(cpu.status());
    config.processor = tb::Processor::kGpu;
    auto gpu = tb::analysis::RunExperiment(config);
    TB_CHECK_OK(gpu.status());

    std::string row_speedup = "GPU OOM";
    std::string gpu_time = "-";
    if (!gpu->oom) {
      row_speedup = tb::analysis::FormatSpeedup(
          tb::analysis::SignedSpeedup(cpu->makespan, gpu->makespan));
      gpu_time = tb::StrFormat("%.1f s", gpu->makespan);
    }
    table.AddRow({tb::StrFormat("%lldx%lld", static_cast<long long>(grid),
                                static_cast<long long>(grid)),
                  tb::HumanBytes(cpu->block_bytes),
                  tb::StrFormat("%.1f s", cpu->makespan), gpu_time,
                  row_speedup});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Try examples/blocksize_autotune to pick the best grid "
              "automatically.\n");
  return 0;
}
