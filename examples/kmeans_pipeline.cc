// A realistic data-science pipeline: distributed K-means clustering
// over Gaussian-blob data, executed for real on the thread pool,
// with the paper's metric decomposition printed per task type, then
// projected to cluster scale with the simulator.
//
//   $ ./kmeans_pipeline

#include <cstdio>

#include "algos/kmeans.h"
#include "analysis/experiment.h"
#include "analysis/report.h"
#include "common/logging.h"
#include "common/strings.h"
#include "data/generators.h"
#include "runtime/thread_pool_executor.h"

namespace tb = taskbench;

int main() {
  // 4096 samples x 8 features, chunked row-wise into 8 blocks.
  auto spec = tb::data::GridSpec::CreateFromGridDim(
      tb::data::DatasetSpec{"samples", 4096, 8}, 8, 1);
  TB_CHECK_OK(spec.status());

  tb::algos::KMeansOptions options;
  options.materialize = true;
  options.blobs = true;
  options.num_clusters = 5;
  options.iterations = 8;
  auto wf = tb::algos::BuildKMeans(*spec, options);
  TB_CHECK_OK(wf.status());
  std::printf("K-means workflow: %lld tasks over %zu blocks, "
              "%d clusters, %d iterations\n",
              static_cast<long long>(wf->graph.num_tasks()),
              wf->blocks.size(), options.num_clusters, options.iterations);
  std::printf("DAG: width %lld (task parallelism), height %lld "
              "(narrow and deep, Figure 6a shape)\n",
              static_cast<long long>(wf->graph.MaxWidth()),
              static_cast<long long>(wf->graph.MaxHeight()));

  const tb::data::Matrix initial = *wf->graph.data(wf->centroids).value;

  tb::runtime::RunOptions exec_options;
  exec_options.num_threads = 4;
  tb::runtime::ThreadPoolExecutor executor(exec_options);
  auto report = executor.Execute(wf->graph);
  TB_CHECK_OK(report.status());

  auto centroids = executor.FetchData(wf->graph, wf->centroids);
  TB_CHECK_OK(centroids.status());
  std::printf("converged: centroids moved %.3f from their seed rows\n",
              centroids->MaxAbsDiff(initial));

  // Per-task-type stage breakdown (the Section 4.2 metrics, measured
  // on real execution).
  std::printf("\nmeasured stage times per task type (wall clock):\n");
  tb::analysis::TextTable stages(
      {"task type", "count", "deserialize", "user code", "serialize"});
  const auto by_type = report->MeanStagesByType();
  const auto counts = report->CountByType();
  for (const auto& [type, mean] : by_type) {
    stages.AddRow({type, tb::StrFormat("%d", counts.at(type)),
                   tb::HumanSeconds(mean.deserialize),
                   tb::HumanSeconds(mean.user_code()),
                   tb::HumanSeconds(mean.serialize)});
  }
  std::printf("%s\n", stages.ToString().c_str());

  // Project the paper's 10 GB dataset to cluster scale.
  std::printf("simulated 10 GB K-means on Minotauro (CPU vs GPU):\n");
  tb::analysis::TextTable sim_table(
      {"grid", "block", "CPU p.tasks", "GPU p.tasks", "speedup"});
  for (int64_t grid : {32, 64, 128, 256}) {
    tb::analysis::ExperimentConfig config;
    config.algorithm = tb::analysis::Algorithm::kKMeans;
    config.dataset = tb::data::PaperDatasets::KMeans10GB();
    config.grid_rows = grid;
    config.iterations = 1;
    config.processor = tb::Processor::kCpu;
    auto cpu = tb::analysis::RunExperiment(config);
    TB_CHECK_OK(cpu.status());
    config.processor = tb::Processor::kGpu;
    auto gpu = tb::analysis::RunExperiment(config);
    TB_CHECK_OK(gpu.status());
    sim_table.AddRow(
        {tb::StrFormat("%lldx1", static_cast<long long>(grid)),
         tb::HumanBytes(cpu->block_bytes),
         tb::StrFormat("%.1f s", cpu->parallel_task_time),
         gpu->oom ? "GPU OOM"
                  : tb::StrFormat("%.1f s", gpu->parallel_task_time),
         gpu->oom ? "-"
                  : tb::analysis::FormatSpeedup(tb::analysis::SignedSpeedup(
                        cpu->parallel_task_time, gpu->parallel_task_time))});
  }
  std::printf("%s", sim_table.ToString().c_str());
  return 0;
}
