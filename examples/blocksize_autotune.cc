// "Toward automated design" (Section 5.4.3) made concrete: a simple
// auto-tuner that sweeps the block-dimension factor with the
// simulator and recommends (a) the best grid and (b) whether GPUs
// are worth using for the given workload — exactly the decision the
// paper says developers make today by intuition and exhaustive
// reruns.
//
//   $ ./blocksize_autotune

#include <cstdio>
#include <optional>

#include "analysis/experiment.h"
#include "analysis/factor_space.h"
#include "analysis/report.h"
#include "common/logging.h"
#include "common/strings.h"
#include "data/generators.h"

namespace tb = taskbench;
using tb::analysis::Algorithm;
using tb::analysis::ExperimentConfig;

namespace {

struct Recommendation {
  int64_t grid_rows = 0;
  int64_t grid_cols = 0;
  tb::Processor processor = tb::Processor::kCpu;
  double makespan = 0;
};

/// Sweeps grids x processors and returns the fastest feasible
/// configuration (GPU-OOM configs are infeasible).
Recommendation Autotune(Algorithm algorithm,
                        const tb::data::DatasetSpec& dataset,
                        const std::vector<std::pair<int64_t, int64_t>>& grids,
                        tb::analysis::TextTable* trace) {
  std::optional<Recommendation> best;
  for (const auto& [gr, gc] : grids) {
    for (tb::Processor proc : {tb::Processor::kCpu, tb::Processor::kGpu}) {
      ExperimentConfig config;
      config.algorithm = algorithm;
      config.dataset = dataset;
      config.grid_rows = gr;
      config.grid_cols = gc;
      config.iterations = 1;
      config.processor = proc;
      auto result = tb::analysis::RunExperiment(config);
      TB_CHECK_OK(result.status());
      trace->AddRow(
          {tb::StrFormat("%lldx%lld", static_cast<long long>(gr),
                         static_cast<long long>(gc)),
           tb::ToString(proc),
           result->oom ? "GPU OOM"
                       : tb::StrFormat("%.1f s", result->makespan)});
      if (result->oom) continue;
      if (!best || result->makespan < best->makespan) {
        best = Recommendation{gr, gc, proc, result->makespan};
      }
    }
  }
  TB_CHECK(best.has_value());
  return *best;
}

}  // namespace

int main() {
  struct Workload {
    const char* name;
    Algorithm algorithm;
    tb::data::DatasetSpec dataset;
    std::vector<std::pair<int64_t, int64_t>> grids;
  };
  const std::vector<Workload> workloads = {
      {"Matmul 8 GB", Algorithm::kMatmul,
       tb::data::PaperDatasets::Matmul8GB(),
       tb::analysis::MatmulPaperGrids()},
      {"K-means 10 GB", Algorithm::kKMeans,
       tb::data::PaperDatasets::KMeans10GB(),
       tb::analysis::KMeansPaperGrids()},
  };

  for (const Workload& workload : workloads) {
    std::printf("=== autotuning %s ===\n", workload.name);
    tb::analysis::TextTable trace({"grid", "proc", "makespan"});
    const Recommendation rec = Autotune(workload.algorithm,
                                        workload.dataset, workload.grids,
                                        &trace);
    std::printf("%s", trace.ToString().c_str());
    std::printf("--> recommended: grid %lldx%lld on %s (%.1f s)\n\n",
                static_cast<long long>(rec.grid_rows),
                static_cast<long long>(rec.grid_cols),
                tb::ToString(rec.processor).c_str(), rec.makespan);
  }
  std::printf(
      "The recommendation balances thread-level parallelism (bigger "
      "blocks) against task-level parallelism (more blocks), storage\n"
      "contention and GPU memory limits — the multi-factor trade-off the "
      "paper's analysis characterizes.\n");
  return 0;
}
