// Compares storage architectures and scheduling policies on the
// simulated cluster — the Section 5.3 experiment as a library user
// would run it for their own workload.
//
//   $ ./scheduler_comparison

#include <cstdio>

#include "analysis/experiment.h"
#include "analysis/report.h"
#include "common/logging.h"
#include "common/strings.h"
#include "data/generators.h"

namespace tb = taskbench;
using tb::analysis::ExperimentConfig;

int main() {
  std::printf("K-means 10 GB, 10 clusters: parallel-task time by storage "
              "architecture and scheduling policy\n\n");
  tb::analysis::TextTable table({"grid", "proc", "local+gen", "local+loc",
                                 "shared+gen", "shared+loc"});
  for (int64_t grid : {16, 64, 256}) {
    for (tb::Processor proc : {tb::Processor::kCpu, tb::Processor::kGpu}) {
      std::vector<std::string> row{
          tb::StrFormat("%lldx1", static_cast<long long>(grid)),
          tb::ToString(proc)};
      for (tb::hw::StorageArchitecture storage :
           {tb::hw::StorageArchitecture::kLocalDisk,
            tb::hw::StorageArchitecture::kSharedDisk}) {
        for (tb::SchedulingPolicy policy :
             {tb::SchedulingPolicy::kTaskGenerationOrder,
              tb::SchedulingPolicy::kDataLocality}) {
          ExperimentConfig config;
          config.algorithm = tb::analysis::Algorithm::kKMeans;
          config.dataset = tb::data::PaperDatasets::KMeans10GB();
          config.grid_rows = grid;
          config.iterations = 1;
          config.processor = proc;
          config.run.storage = storage;
          config.run.policy = policy;
          auto result = tb::analysis::RunExperiment(config);
          TB_CHECK_OK(result.status());
          row.push_back(result->oom
                            ? "OOM"
                            : tb::StrFormat("%.1f s",
                                            result->parallel_task_time));
        }
      }
      table.AddRow(std::move(row));
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected patterns (observations O5/O6): local-disk columns barely "
      "react to the policy; shared-disk columns shift more, and the\n"
      "data-locality policy's extra per-decision cost hurts fine-grained "
      "grids the most.\n");
  return 0;
}
